// Bit-determinism: identical configurations and seeds must produce identical
// simulated timelines, message counts, and results — the property that makes
// every experiment in EXPERIMENTS.md exactly reproducible.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/machine.h"
#include "src/em3d/em3d.h"
#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

struct RunFingerprint {
  SimTime final_time = 0;
  int64_t mesh_messages = 0;
  int64_t mesh_bytes = 0;
  int64_t faults = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint CoherencyWorkload(DsmKind kind) {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = kind;
  Machine machine(config);
  MemObjectId region = machine.CreateSharedRegion(0, 32);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 6; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(6));
    const VmOffset addr = rng.NextBelow(32) * 8192;
    if (rng.NextBool(0.5)) {
      auto w = mems[node]->WriteU64(addr, static_cast<uint64_t>(i));
      machine.Run();
    } else {
      auto r = mems[node]->ReadU64(addr);
      machine.Run();
    }
  }
  return {machine.Now(), machine.stats().Get("mesh.messages"),
          machine.stats().Get("mesh.bytes"), machine.stats().Get("vm.faults")};
}

TEST(DeterminismTest, AsvmCoherencyRunsAreBitStable) {
  EXPECT_EQ(CoherencyWorkload(DsmKind::kAsvm), CoherencyWorkload(DsmKind::kAsvm));
}

TEST(DeterminismTest, XmmCoherencyRunsAreBitStable) {
  EXPECT_EQ(CoherencyWorkload(DsmKind::kXmm), CoherencyWorkload(DsmKind::kXmm));
}

TEST(DeterminismTest, IvyCoherencyRunsAreBitStable) {
  EXPECT_EQ(CoherencyWorkload(DsmKind::kIvy), CoherencyWorkload(DsmKind::kIvy));
}

TEST(DeterminismTest, Em3dTimedRunsAreBitStable) {
  auto run = []() {
    Em3dParams params;
    params.cells = 8000;
    params.iterations = 10;
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    return RunEm3dTimed(machine, params, 4, /*measure_iters=*/3).seconds;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(DeterminismTest, Em3dVerifiedChecksumIsStable) {
  auto run = []() {
    Em3dParams params;
    params.cells = 120;
    params.iterations = 3;
    MachineConfig config;
    config.nodes = 3;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    return RunEm3dVerified(machine, params, 3);
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismTest, FileBenchRatesAreBitStable) {
  auto run = []() {
    MachineConfig config;
    config.nodes = 5;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    int32_t file_id = machine.cluster().file_pager().CreateFile("d", 32, true);
    MemObjectId region = machine.dsm().CreateFileRegion(file_id, 32);
    return RunParallelFileRead(machine, region, 32, 4, 1).per_node_mb_s;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

// Golden digests: the FNV-1a fold of read values, completion times, and final
// traffic counters of a fixed random coherency workload. These pins the whole
// simulated timeline — any protocol, transport, or scheduling change that
// shifts a single event by one tick changes the digest. Recorded from the
// original seed implementation; the typed-envelope/PageTable/ProtocolAgent
// refactor was required to preserve them bit-exactly.
uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t DigestWorkload(DsmKind kind) {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = kind;
  Machine machine(config);
  MemObjectId region = machine.CreateSharedRegion(0, 32);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 6; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }
  Rng rng(1234);
  uint64_t digest = 14695981039346656037ULL;
  for (int i = 0; i < 200; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(6));
    const VmOffset addr = rng.NextBelow(32) * 8192;
    if (rng.NextBool(0.5)) {
      auto w = mems[node]->WriteU64(addr, static_cast<uint64_t>(i));
      machine.Run();
    } else {
      auto r = mems[node]->ReadU64(addr);
      machine.Run();
      digest = Fnv1a(digest, r.ready() ? r.value() : ~0ULL);
    }
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  return digest;
}

TEST(DeterminismTest, AsvmTimelineDigestMatchesGolden) {
  EXPECT_EQ(DigestWorkload(DsmKind::kAsvm), 16791609795929360054ULL);
}

TEST(DeterminismTest, XmmTimelineDigestMatchesGolden) {
  EXPECT_EQ(DigestWorkload(DsmKind::kXmm), 9185313916855082992ULL);
}

TEST(DeterminismTest, IvyTimelineDigestMatchesGolden) {
  // Recorded when the IVY backend landed; pins the dynamic-ownership timeline
  // (forward chains, migrations, compression) the same way the ASVM and XMM
  // goldens pin theirs.
  EXPECT_EQ(DigestWorkload(DsmKind::kIvy), 13603137395560274450ULL);
}

// Fault-injected digest: the same workload as DigestWorkload, but run under a
// fault profile with timeouts/retries armed, folding in the robustness
// counters too. Two runs with the same (profile, seed) must be bit-identical
// — fault injection is part of the deterministic timeline, not noise on top.
uint64_t FaultDigestWorkload(DsmKind kind, const char* profile, uint64_t seed) {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = kind;
  EXPECT_TRUE(FaultProfileFromName(profile, seed, config.nodes, &config.fault));
  config.retry.timeout_ns = 20 * kMillisecond;
  config.stall_watchdog = true;
  Machine machine(config);
  MemObjectId region = machine.CreateSharedRegion(0, 32);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 6; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }
  Rng rng(1234);
  uint64_t digest = 14695981039346656037ULL;
  for (int i = 0; i < 200; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(6));
    const VmOffset addr = rng.NextBelow(32) * 8192;
    if (rng.NextBool(0.5)) {
      auto w = mems[node]->WriteU64(addr, static_cast<uint64_t>(i));
      machine.Run();
    } else {
      auto r = mems[node]->ReadU64(addr);
      machine.Run();
      digest = Fnv1a(digest, r.ready() ? r.value() : ~0ULL);
    }
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }
  for (const char* counter :
       {"mesh.messages", "mesh.bytes", "vm.faults", "fault.jitter_ns", "fault.jitter_messages",
        "fault.degraded_messages", "fault.slowed_messages", "dsm.op_retries", "dsm.op_timeouts",
        "dsm.duplicates_suppressed"}) {
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get(counter)));
  }
  return digest;
}

TEST(DeterminismTest, FaultInjectedRunsAreBitStablePerProfile) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
    for (const char* profile : {"jitter", "slow-node", "degraded-links"}) {
      EXPECT_EQ(FaultDigestWorkload(kind, profile, 42),
                FaultDigestWorkload(kind, profile, 42))
          << ToString(kind) << " under " << profile << " is not deterministic";
    }
  }
}

TEST(DeterminismTest, FaultSeedsChangeTheJitterTimeline) {
  // The jitter profile draws per-message delays from the plan's RNG, so
  // different seeds must produce different timelines.
  EXPECT_NE(FaultDigestWorkload(DsmKind::kAsvm, "jitter", 1),
            FaultDigestWorkload(DsmKind::kAsvm, "jitter", 2));
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity that the workload above actually depends on the RNG stream.
  auto run = [](uint64_t seed) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    MemObjectId region = machine.CreateSharedRegion(0, 16);
    std::vector<TaskMemory*> mems;
    for (NodeId n = 0; n < 4; ++n) {
      mems.push_back(&machine.MapRegion(n, region));
    }
    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      auto w = mems[rng.NextBelow(4)]->WriteU64(rng.NextBelow(16) * 8192, i);
      machine.Run();
    }
    return machine.stats().Get("mesh.messages");
  };
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace asvm
