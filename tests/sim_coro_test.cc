#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/future.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace asvm {
namespace {

Task Sleeper(Engine& engine, SimDuration d, int* out) {
  co_await Delay(engine, d);
  *out = 1;
}

TEST(TaskTest, RunsEagerlyUntilFirstSuspension) {
  Engine engine;
  int done = 0;
  Task t = Sleeper(engine, 100, &done);
  EXPECT_FALSE(t.done());  // suspended at the delay
  EXPECT_EQ(done, 0);
  engine.Run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(done, 1);
  EXPECT_EQ(engine.Now(), 100);
}

Task Immediate(int* out) {
  *out = 7;
  co_return;
}

TEST(TaskTest, TaskWithoutSuspensionCompletesInline) {
  int v = 0;
  Task t = Immediate(&v);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(v, 7);
}

Task Awaiter(Engine& engine, Task inner, std::vector<int>* log) {
  log->push_back(1);
  co_await inner;
  log->push_back(2);
  co_await Delay(engine, 5);
  log->push_back(3);
}

TEST(TaskTest, AwaitingAnotherTask) {
  Engine engine;
  std::vector<int> log;
  int done = 0;
  Task inner = Sleeper(engine, 50, &done);
  Task outer = Awaiter(engine, inner, &log);
  EXPECT_EQ(log, (std::vector<int>{1}));
  engine.Run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.Now(), 55);
  EXPECT_TRUE(outer.done());
}

TEST(TaskTest, AwaitingCompletedTaskDoesNotSuspend) {
  Engine engine;
  int v = 0;
  Task inner = Immediate(&v);
  std::vector<int> log;
  Task outer = Awaiter(engine, inner, &log);
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  engine.Run();
  EXPECT_TRUE(outer.done());
}

Task WaitFuture(Future<int> f, int* out) {
  *out = co_await f;
}

TEST(FutureTest, AwaitBlocksUntilSet) {
  Engine engine;
  Promise<int> promise(engine);
  int out = 0;
  Task t = WaitFuture(promise.GetFuture(), &out);
  EXPECT_FALSE(t.done());
  engine.Run();
  EXPECT_FALSE(t.done());  // nothing set yet
  promise.Set(99);
  engine.Run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(out, 99);
}

TEST(FutureTest, AwaitReadyFutureResumesImmediately) {
  Engine engine;
  Promise<int> promise(engine);
  promise.Set(5);
  int out = 0;
  Task t = WaitFuture(promise.GetFuture(), &out);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(out, 5);
}

TEST(FutureTest, MultipleWaitersAllResume) {
  Engine engine;
  Promise<int> promise(engine);
  int a = 0;
  int b = 0;
  Task ta = WaitFuture(promise.GetFuture(), &a);
  Task tb = WaitFuture(promise.GetFuture(), &b);
  promise.Set(3);
  engine.Run();
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 3);
  EXPECT_TRUE(ta.done() && tb.done());
}

TEST(FutureTest, ValuePeek) {
  Engine engine;
  Promise<int> promise(engine);
  Future<int> f = promise.GetFuture();
  EXPECT_FALSE(f.ready());
  promise.Set(11);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.value(), 11);
}

Task Worker(Engine& engine, WaitGroup& wg, SimDuration d, int* counter) {
  co_await Delay(engine, d);
  ++*counter;
  wg.Done();
}

Task Joiner(WaitGroup& wg, bool* joined) {
  co_await wg.Wait();
  *joined = true;
}

TEST(WaitGroupTest, JoinWaitsForAllWorkers) {
  Engine engine;
  WaitGroup wg(engine);
  int counter = 0;
  bool joined = false;
  wg.Add(3);
  Task w1 = Worker(engine, wg, 10, &counter);
  Task w2 = Worker(engine, wg, 20, &counter);
  Task w3 = Worker(engine, wg, 30, &counter);
  Task j = Joiner(wg, &joined);
  EXPECT_FALSE(joined);
  engine.RunUntil(25);
  EXPECT_FALSE(joined);
  engine.Run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(counter, 3);
  EXPECT_TRUE(j.done());
}

TEST(WaitGroupTest, WaitOnZeroCountReturnsImmediately) {
  Engine engine;
  WaitGroup wg(engine);
  bool joined = false;
  Task j = Joiner(wg, &joined);
  EXPECT_TRUE(joined);
  (void)j;
}

Task AcquireRelease(Engine& engine, SimSemaphore& sem, SimDuration hold,
                    std::vector<SimTime>* log) {
  co_await sem.Acquire();
  log->push_back(engine.Now());
  co_await Delay(engine, hold);
  sem.Release();
}

TEST(SemaphoreTest, SerializesBeyondPermitCount) {
  Engine engine;
  SimSemaphore sem(engine, 2);
  std::vector<SimTime> acquired;
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(AcquireRelease(engine, sem, 100, &acquired));
  }
  engine.Run();
  ASSERT_EQ(acquired.size(), 4u);
  // Two run immediately; the next two wait for releases at t=100.
  EXPECT_EQ(acquired[0], 0);
  EXPECT_EQ(acquired[1], 0);
  EXPECT_EQ(acquired[2], 100);
  EXPECT_EQ(acquired[3], 100);
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, TryAcquire) {
  Engine engine;
  SimSemaphore sem(engine, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(SemaphoreTest, BlockedCountTracksWaiters) {
  Engine engine;
  SimSemaphore sem(engine, 0);
  std::vector<SimTime> acquired;
  Task t = AcquireRelease(engine, sem, 10, &acquired);
  EXPECT_EQ(sem.blocked(), 1);
  sem.Release();
  engine.Run();
  EXPECT_EQ(sem.blocked(), 0);
  EXPECT_TRUE(t.done());
}

Task BarrierParty(Engine& engine, SimBarrier& barrier, SimDuration arrive_at,
                  std::vector<SimTime>* log) {
  co_await Delay(engine, arrive_at);
  co_await barrier.Arrive();
  log->push_back(engine.Now());
}

TEST(BarrierTest, AllPartiesReleaseTogether) {
  Engine engine;
  SimBarrier barrier(engine, 3);
  std::vector<SimTime> released;
  Task a = BarrierParty(engine, barrier, 10, &released);
  Task b = BarrierParty(engine, barrier, 50, &released);
  Task c = BarrierParty(engine, barrier, 90, &released);
  engine.Run();
  ASSERT_EQ(released.size(), 3u);
  for (SimTime t : released) {
    EXPECT_EQ(t, 90);  // everyone waits for the last arrival
  }
  EXPECT_TRUE(a.done() && b.done() && c.done());
}

TEST(BarrierTest, ReusableAcrossRounds) {
  Engine engine;
  SimBarrier barrier(engine, 2);
  std::vector<SimTime> released;
  auto round_trip = [&](SimDuration d1, SimDuration d2) {
    Task a = BarrierParty(engine, barrier, d1, &released);
    Task b = BarrierParty(engine, barrier, d2, &released);
    engine.Run();
  };
  round_trip(5, 10);
  round_trip(1, 2);
  ASSERT_EQ(released.size(), 4u);
  EXPECT_EQ(released[0], 10);
  EXPECT_EQ(released[1], 10);
}

TEST(BarrierTest, SinglePartyNeverBlocks) {
  Engine engine;
  SimBarrier barrier(engine, 1);
  std::vector<SimTime> released;
  Task a = BarrierParty(engine, barrier, 5, &released);
  engine.Run();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_TRUE(a.done());
}

}  // namespace
}  // namespace asvm
