// Physical memory as a cache: eviction, paging space round trips, wiring,
// disk timing, and the default/file pagers.
#include <gtest/gtest.h>

#include "src/machvm/default_pager.h"
#include "src/machvm/disk.h"
#include "src/machvm/file_pager.h"
#include "src/machvm/node_vm.h"
#include "src/machvm/task_memory.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

class PagingTest : public ::testing::Test {
 protected:
  PagingTest()
      : disk_(engine_, DiskParams{}, &stats_),
        pager_(engine_, &disk_, &stats_),
        vm_(engine_, 0, VmParams{.page_size = 4096, .frame_capacity = 8, .costs = {}}, &stats_) {
    vm_.SetDefaultPager(&pager_);
  }

  void WriteAt(VmMap& map, VmOffset addr, uint64_t value) {
    TaskMemory mem(vm_, map);
    auto f = mem.WriteU64(addr, value);
    engine_.Run();
    ASSERT_TRUE(f.ready());
    ASSERT_EQ(f.value(), Status::kOk);
  }

  uint64_t ReadAt(VmMap& map, VmOffset addr) {
    TaskMemory mem(vm_, map);
    auto f = mem.ReadU64(addr);
    engine_.Run();
    EXPECT_TRUE(f.ready());
    return f.value();
  }

  Engine engine_;
  StatsRegistry stats_;
  Disk disk_;
  DefaultPager pager_;
  NodeVm vm_;
};

TEST_F(PagingTest, EvictionKeepsFrameCountBounded) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(32);
  ASSERT_EQ(map->Map(0, 32, obj, 0, Inheritance::kCopy), Status::kOk);
  for (int i = 0; i < 32; ++i) {
    WriteAt(*map, static_cast<VmOffset>(i) * 4096, static_cast<uint64_t>(i + 1));
  }
  EXPECT_LE(vm_.frames_used(), vm_.frames_capacity());
  EXPECT_GT(stats_.Get("vm.pageouts"), 0);
}

TEST_F(PagingTest, DirtyPagesSurviveEvictionThroughPagingSpace) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(32);
  ASSERT_EQ(map->Map(0, 32, obj, 0, Inheritance::kCopy), Status::kOk);
  for (int i = 0; i < 32; ++i) {
    WriteAt(*map, static_cast<VmOffset>(i) * 4096, static_cast<uint64_t>(i) * 7 + 1);
  }
  // All 32 written; only 8 frames. Every value must still be readable.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ReadAt(*map, static_cast<VmOffset>(i) * 4096), static_cast<uint64_t>(i) * 7 + 1)
        << "page " << i;
  }
  EXPECT_GT(stats_.Get("default_pager.pageins"), 0);
}

TEST_F(PagingTest, CleanPagedInPageEvictsWithoutRewrite) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(32);
  ASSERT_EQ(map->Map(0, 32, obj, 0, Inheritance::kCopy), Status::kOk);
  for (int i = 0; i < 9; ++i) {
    WriteAt(*map, static_cast<VmOffset>(i) * 4096, 1000 + static_cast<uint64_t>(i));
  }
  // Page 0 was evicted dirty (capacity 8). Read it back (clean now).
  EXPECT_EQ(ReadAt(*map, 0), 1000u);
  int64_t writes_before = stats_.Get("default_pager.pageouts");
  // Evict it again by touching more pages; it is clean, so no new pageout
  // write for page 0 is strictly required (it may still be counted for other
  // dirty pages).
  for (int i = 9; i < 18; ++i) {
    WriteAt(*map, static_cast<VmOffset>(i) * 4096, 2000 + static_cast<uint64_t>(i));
  }
  EXPECT_EQ(ReadAt(*map, 0), 1000u);
  EXPECT_GE(stats_.Get("default_pager.pageouts"), writes_before);
}

TEST_F(PagingTest, WiredPagesAreNotEvicted) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(32);
  ASSERT_EQ(map->Map(0, 32, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*map, 0, 42);
  vm_.WirePage(*obj, 0);
  for (int i = 1; i < 20; ++i) {
    WriteAt(*map, static_cast<VmOffset>(i) * 4096, static_cast<uint64_t>(i));
  }
  EXPECT_NE(obj->FindResident(0), nullptr) << "wired page must stay resident";
  vm_.UnwirePage(*obj, 0);
}

TEST_F(PagingTest, ExtractPageReturnsContentsAndDirtyState) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(4);
  ASSERT_EQ(map->Map(0, 4, obj, 0, Inheritance::kCopy), Status::kOk);
  WriteAt(*map, 0, 77);
  auto extracted = vm_.ExtractPage(*obj, 0);
  EXPECT_TRUE(extracted.was_resident);
  EXPECT_TRUE(extracted.dirty);
  uint64_t v = 0;
  memcpy(&v, extracted.data->data(), 8);
  EXPECT_EQ(v, 77u);
  EXPECT_EQ(obj->FindResident(0), nullptr);

  auto missing = vm_.ExtractPage(*obj, 1);
  EXPECT_FALSE(missing.was_resident);
}

TEST_F(PagingTest, PageInChargesDiskLatency) {
  VmMap* map = vm_.CreateMap();
  auto obj = vm_.CreateObject(32);
  ASSERT_EQ(map->Map(0, 32, obj, 0, Inheritance::kCopy), Status::kOk);
  for (int i = 0; i < 12; ++i) {
    WriteAt(*map, static_cast<VmOffset>(i) * 4096, static_cast<uint64_t>(i));
  }
  engine_.Run();
  SimTime before = engine_.Now();
  EXPECT_EQ(ReadAt(*map, 0), 0u);  // page 0 was paged out; needs disk
  EXPECT_GT(engine_.Now() - before, 10 * kMillisecond);
}

TEST(DiskTest, RandomAccessPaysSeek) {
  Engine engine;
  Disk disk(engine, DiskParams{}, nullptr);
  SimTime done1 = 0;
  disk.Read(100, 8192, [&]() { done1 = engine.Now(); });
  engine.Run();
  EXPECT_GT(done1, DiskParams{}.seek_ns);
}

TEST(DiskTest, SequentialAccessSkipsSeek) {
  Engine engine;
  Disk disk(engine, DiskParams{}, nullptr);
  SimTime first = 0;
  SimTime second = 0;
  disk.Read(100, 8192, [&]() { first = engine.Now(); });
  engine.Run();
  disk.Read(101, 8192, [&]() { second = engine.Now(); });
  engine.Run();
  EXPECT_LT(second - first, DiskParams{}.seek_ns);  // transfer only
}

TEST(DiskTest, OperationsSerialize) {
  Engine engine;
  Disk disk(engine, DiskParams{}, nullptr);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    disk.Write(i * 50, 8192, [&]() { done.push_back(engine.Now()); });
  }
  engine.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_GT(done[1] - done[0], DiskParams{}.seek_ns / 2);
  EXPECT_GT(done[2] - done[1], DiskParams{}.seek_ns / 2);
  EXPECT_EQ(disk.writes(), 3);
}

TEST(DefaultPagerTest, RoundTripPreservesData) {
  Engine engine;
  Disk disk(engine, DiskParams{}, nullptr);
  DefaultPager pager(engine, &disk, nullptr);
  auto page = AllocPage(4096);
  (*page)[0] = std::byte{0xAB};
  EXPECT_FALSE(pager.HasPage(1, 0));
  pager.WritePage(1, 0, page);
  EXPECT_TRUE(pager.HasPage(1, 0));
  // Mutating the original after the write must not affect the stored copy.
  (*page)[0] = std::byte{0x00};
  PageBuffer got;
  pager.ReadPage(1, 0, [&](PageBuffer data) { got = std::move(data); });
  engine.Run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ((*got)[0], std::byte{0xAB});
}

TEST(DefaultPagerTest, DropForgetsPage) {
  Engine engine;
  Disk disk(engine, DiskParams{}, nullptr);
  DefaultPager pager(engine, &disk, nullptr);
  pager.WritePage(1, 0, AllocPage(4096));
  EXPECT_EQ(pager.stored_pages(), 1u);
  pager.Drop(1, 0);
  EXPECT_FALSE(pager.HasPage(1, 0));
  EXPECT_EQ(pager.stored_pages(), 0u);
}

class FilePagerTest : public ::testing::Test {
 protected:
  FilePagerTest() : disk_(engine_, DiskParams{}, nullptr),
                    pager_(engine_, 0, &disk_, FilePagerParams{}, nullptr) {}

  Engine engine_;
  Disk disk_;
  FilePager pager_;
};

TEST_F(FilePagerTest, FreshFileReadsAsZeros) {
  int32_t f = pager_.CreateFile("scratch", 16, /*prefilled=*/false);
  EXPECT_FALSE(pager_.HasData(f, 0));
  PageBuffer got;
  pager_.ReadPage(f, 0, 4096, [&](PageBuffer data) { got = std::move(data); });
  engine_.Run();
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(PageIsZero(got));
}

TEST_F(FilePagerTest, PrefilledFileHasDeterministicContents) {
  int32_t f = pager_.CreateFile("data", 16, /*prefilled=*/true);
  EXPECT_TRUE(pager_.HasData(f, 3));
  PageBuffer a;
  PageBuffer b;
  pager_.ReadPage(f, 3, 4096, [&](PageBuffer data) { a = std::move(data); });
  engine_.Run();
  pager_.ReadPage(f, 3, 4096, [&](PageBuffer data) { b = std::move(data); });
  engine_.Run();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(PageIsZero(a));
}

TEST_F(FilePagerTest, WriteThenReadReturnsWrittenData) {
  int32_t f = pager_.CreateFile("file", 16, /*prefilled=*/true);
  auto page = AllocPage(4096);
  (*page)[100] = std::byte{0x5C};
  bool written = false;
  pager_.WritePage(f, 2, page, [&]() { written = true; });
  engine_.Run();
  EXPECT_TRUE(written);
  PageBuffer got;
  pager_.ReadPage(f, 2, 4096, [&](PageBuffer data) { got = std::move(data); });
  engine_.Run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ((*got)[100], std::byte{0x5C});
}

TEST_F(FilePagerTest, RequestsSerializeOnPagerCpu) {
  int32_t f = pager_.CreateFile("busy", 16, /*prefilled=*/false);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    pager_.GrantFresh(f, i, [&]() { done.push_back(engine_.Now()); });
  }
  engine_.Run();
  ASSERT_EQ(done.size(), 4u);
  for (size_t i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i] - done[i - 1], FilePagerParams{}.request_cpu_ns);
  }
}

TEST_F(FilePagerTest, ReadAheadClustersDiskAccesses) {
  // §6 clustering: with a 7-page read-ahead window, a 32-page scan costs 4
  // disk operations instead of 32, and the staged pages serve from memory.
  FilePagerParams params;
  params.readahead_pages = 7;
  Disk disk(engine_, DiskParams{}, nullptr);
  FilePager pager(engine_, 0, &disk, params, nullptr);
  int32_t f = pager.CreateFile("ra", 32, /*prefilled=*/true);
  for (int p = 0; p < 32; ++p) {
    PageBuffer got;
    pager.ReadPage(f, p, 4096, [&](PageBuffer data) { got = std::move(data); });
    engine_.Run();
    ASSERT_NE(got, nullptr) << "page " << p;
    std::vector<std::byte> want(4096);
    FilePager::FillPattern(f, p, want);
    EXPECT_EQ(*got, want) << "page " << p;
  }
  EXPECT_EQ(disk.reads(), 4);
}

TEST_F(FilePagerTest, ReadAheadOffMatchesLegacyBehaviour) {
  int32_t f = pager_.CreateFile("nora", 8, /*prefilled=*/true);
  for (int p = 0; p < 8; ++p) {
    pager_.ReadPage(f, p, 4096, [](PageBuffer) {});
    engine_.Run();
  }
  EXPECT_EQ(disk_.reads(), 8);
}

TEST_F(FilePagerTest, SequentialReadsAreFasterThanRandom) {
  int32_t f = pager_.CreateFile("seq", 64, /*prefilled=*/true);
  // Sequential scan.
  SimTime t0 = engine_.Now();
  for (int i = 0; i < 8; ++i) {
    pager_.ReadPage(f, i, 4096, [](PageBuffer) {});
  }
  engine_.Run();
  SimDuration sequential = engine_.Now() - t0;
  // Random scan (alternating ends).
  t0 = engine_.Now();
  for (int i = 0; i < 8; ++i) {
    pager_.ReadPage(f, (i % 2 == 0) ? 40 + i : 10 + i, 4096, [](PageBuffer) {});
  }
  engine_.Run();
  SimDuration random = engine_.Now() - t0;
  EXPECT_LT(sequential, random / 2);
}

}  // namespace
}  // namespace asvm
