// The sharded-core headline contract (DESIGN.md §13): running the cluster
// split across N worker threads must reproduce the single-threaded timeline
// *byte for byte* — same read values, same completion times, same traffic
// counters, same trace JSON. Conservative lookahead plus deterministic
// (send_time, source node, seq) mailbox ordering — and the same ordering rule
// for cluster mutations applied at inter-window barriers — makes shard count
// a pure performance knob, never an observable one, for every workload:
// coherency storms, the application kernels, the mapped-file benches, and
// fork chains that rewrite the DSM directory mid-run.
//
// Note on configs: the DeterminismTest goldens use the default
// nodes_per_io_group=32, which puts a 6-node machine in one io-group — one
// shard block, so shards>1 is rejected. These tests shrink the io-group so a
// small machine has several blocks; that changes the disk population (and so
// the timeline), which is why they compare shard counts against each other
// rather than against the goldens.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/sor.h"
#include "src/common/rng.h"
#include "src/common/trace.h"
#include "src/core/machine.h"
#include "src/core/measure.h"
#include "src/dsm/failover.h"
#include "src/em3d/em3d.h"
#include "src/mappedfs/file_bench.h"
#include "src/mesh/fault_plan.h"

namespace asvm {
namespace {

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

// The DeterminismTest digest workload (6 nodes, Rng(1234), 200 mixed ops),
// with shard count and io-group size as knobs, optionally capturing the
// Chrome trace JSON of the whole run.
uint64_t CoherencyDigest(DsmKind kind, int shards, int nodes_per_io_group,
                         std::string* trace_json = nullptr,
                         SchedulerKind scheduler = SchedulerKind::kTimerWheel) {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = kind;
  config.shards = shards;
  config.nodes_per_io_group = nodes_per_io_group;
  config.scheduler = scheduler;
  Machine machine(config);
  TraceBuffer trace(1 << 20);  // large enough that nothing is ever evicted
  if (trace_json != nullptr) {
    machine.AttachMonitor(&trace);
  }
  MemObjectId region = machine.CreateSharedRegion(0, 32);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 6; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }
  Rng rng(1234);
  uint64_t digest = 14695981039346656037ULL;
  for (int i = 0; i < 200; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(6));
    const VmOffset addr = rng.NextBelow(32) * 8192;
    if (rng.NextBool(0.5)) {
      auto w = mems[node]->WriteU64(addr, static_cast<uint64_t>(i));
      machine.Run();
    } else {
      auto r = mems[node]->ReadU64(addr);
      machine.Run();
      digest = Fnv1a(digest, r.ready() ? r.value() : ~0ULL);
    }
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  if (trace_json != nullptr) {
    *trace_json = ChromeTraceJson(trace);
  }
  return digest;
}

TEST(ShardedDeterminismTest, SixNodeTimelineMatchesAcrossShardCounts) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
    // nodes_per_io_group=2 gives three shard blocks on six nodes.
    const uint64_t single = CoherencyDigest(kind, 1, 2);
    for (int shards : {2, 3}) {
      EXPECT_EQ(CoherencyDigest(kind, shards, 2), single)
          << ToString(kind) << " diverged at shards=" << shards;
    }
  }
}

TEST(ShardedDeterminismTest, TraceJsonIsByteIdenticalAcrossShardCounts) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
    std::string single, sharded;
    const uint64_t d1 = CoherencyDigest(kind, 1, 2, &single);
    const uint64_t d3 = CoherencyDigest(kind, 3, 2, &sharded);
    EXPECT_EQ(d1, d3);
    // EXPECT_TRUE rather than EXPECT_EQ: a mismatch should not print two
    // multi-megabyte JSON blobs.
    EXPECT_TRUE(single == sharded)
        << ToString(kind) << ": trace JSON differs (" << single.size() << " vs "
        << sharded.size() << " bytes)";
    EXPECT_GT(single.size(), 1000u);
  }
}

// A 256-node concurrent write-fault storm — the parallel workload class the
// sharded core exists for. Every writer's own region is homed on the opposite
// half of the machine, so nearly every fault crosses shard boundaries, and
// all faults are in flight before the single drain.
uint64_t StormDigest(DsmKind kind, int shards) {
  MachineConfig config;
  config.nodes = 256;
  config.dsm = kind;
  config.shards = shards;  // default nodes_per_io_group=32 → 8 blocks
  Machine machine(config);
  machine.cluster().set_event_limit(20'000'000);
  constexpr int kWriters = 32;
  constexpr int kPages = 4;
  std::vector<TaskMemory*> mems;
  for (int w = 0; w < kWriters; ++w) {
    const NodeId writer = static_cast<NodeId>(w * 8);
    const NodeId home = static_cast<NodeId>((w * 8 + 128) % 256);
    MemObjectId region = machine.CreateSharedRegion(home, kPages);
    mems.push_back(&machine.MapRegion(writer, region));
  }
  std::vector<Future<Status>> writes;
  for (int w = 0; w < kWriters; ++w) {
    for (int p = 0; p < kPages; ++p) {
      writes.push_back(mems[w]->WriteU64(static_cast<VmOffset>(p) * 8192,
                                         static_cast<uint64_t>(w * 100 + p)));
    }
  }
  machine.Run();
  uint64_t digest = 14695981039346656037ULL;
  for (const auto& w : writes) {
    digest = Fnv1a(digest, w.ready() && IsOk(w.value()) ? 1 : 0);
  }
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  return digest;
}

TEST(ShardedDeterminismTest, ConcurrentStormMatchesAcrossShardCounts) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
    const uint64_t single = StormDigest(kind, 1);
    for (int shards : {2, 4, 8}) {
      EXPECT_EQ(StormDigest(kind, shards), single)
          << ToString(kind) << " storm diverged at shards=" << shards;
    }
  }
}

TEST(ShardedDeterminismTest, ShardedRunsAgreeAcrossSchedulerKinds) {
  // The per-shard engines honor the (time, seq) contract under either
  // scheduler core, so shard count and scheduler kind must commute: the heap
  // oracle sharded 3 ways reproduces the single-threaded wheel timeline.
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
    const uint64_t wheel1 =
        CoherencyDigest(kind, 1, 2, nullptr, SchedulerKind::kTimerWheel);
    EXPECT_EQ(CoherencyDigest(kind, 3, 2, nullptr, SchedulerKind::kReference), wheel1)
        << ToString(kind) << ": sharded heap oracle diverged from the wheel";
    EXPECT_EQ(CoherencyDigest(kind, 1, 2, nullptr, SchedulerKind::kReference), wheel1)
        << ToString(kind) << ": single-threaded heap oracle diverged from the wheel";
  }
}

TEST(ShardedDeterminismTest, ShardedRunsAreThemselvesBitStable) {
  // Two sharded runs must agree with each other (thread timing must not leak
  // into the timeline) — this is the test TSan runs hammer.
  EXPECT_EQ(CoherencyDigest(DsmKind::kAsvm, 3, 2), CoherencyDigest(DsmKind::kAsvm, 3, 2));
  EXPECT_EQ(StormDigest(DsmKind::kXmm, 4), StormDigest(DsmKind::kXmm, 4));
}

TEST(ShardedDeterminismTest, ShardRequestsAboveBlockCountClamp) {
  // Only 3 io-group blocks exist on 6 nodes with nodes_per_io_group=2, so a
  // request for 4 shards clamps to 3 — and, the timeline being byte-identical
  // at every shard count, produces exactly the shards=1 digest.
  MachineConfig config;
  config.nodes = 6;
  config.shards = 4;
  config.nodes_per_io_group = 2;
  Machine machine(config);
  EXPECT_EQ(machine.cluster().shards(), 3);
  EXPECT_EQ(CoherencyDigest(DsmKind::kAsvm, 4, 2), CoherencyDigest(DsmKind::kAsvm, 1, 2));
}

// --- Whole-workload matrix --------------------------------------------------------
//
// Every CLI workload, both DSMs, shards {2, 4, 8}: digest folds the workload's
// own observable results (times, rates, read-back values), the machine clock,
// the traffic counters, and the full Chrome trace JSON — so equality means the
// sharded run is indistinguishable from the single-threaded one.

uint64_t FoldString(uint64_t h, const std::string& s) {
  for (char c : s) {
    h = Fnv1a(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

uint64_t WorkloadDigest(DsmKind kind, const std::string& workload, int shards) {
  MachineConfig config;
  config.nodes = 8;
  config.dsm = kind;
  config.shards = shards;
  config.nodes_per_io_group = 1;  // 8 blocks: shards up to 8 are real
  Machine machine(config);
  machine.cluster().set_event_limit(30'000'000);
  TraceBuffer trace(1 << 20);
  machine.AttachMonitor(&trace);

  uint64_t digest = 14695981039346656037ULL;
  if (workload == "em3d") {
    Em3dParams params;
    params.cells = 256;
    params.iterations = 2;
    Em3dResult r = RunEm3dTimed(machine, params, 8, /*measure_iters=*/2);
    digest = Fnv1a(digest, std::bit_cast<uint64_t>(r.seconds));
    digest = Fnv1a(digest, static_cast<uint64_t>(r.faults));
  } else if (workload == "sor") {
    SorParams params;
    params.rows = 16;
    params.cols = 16;
    params.iterations = 2;
    SorResult r = RunSorTimed(machine, params, 8, /*measure_iters=*/2);
    digest = Fnv1a(digest, std::bit_cast<uint64_t>(r.seconds));
    digest = Fnv1a(digest, static_cast<uint64_t>(r.faults));
  } else if (workload == "file-read" || workload == "file-write") {
    const bool write = workload == "file-write";
    const VmSize pages = 21;
    MemObjectId region;
    if (write) {
      region = machine.CreateMappedFile("t", pages, /*prefilled=*/false);
    } else {
      int32_t file_id = machine.cluster().file_pager().CreateFile("t", pages, true);
      region = machine.dsm().CreateFileRegion(file_id, pages);
    }
    FileBenchResult r =
        write ? RunParallelFileWrite(machine, region, pages, 7, /*first_node=*/1)
              : RunParallelFileRead(machine, region, pages, 7, /*first_node=*/1);
    for (double secs : r.node_seconds) {
      digest = Fnv1a(digest, std::bit_cast<uint64_t>(secs));
    }
    digest = Fnv1a(digest, std::bit_cast<uint64_t>(r.makespan_seconds));
  } else if (workload == "fork-chain") {
    constexpr int kChain = 3;
    constexpr VmOffset kPages = 4;
    TaskMemory& origin = machine.CreatePrivateTask(0, kPages);
    for (VmOffset p = 0; p < kPages; ++p) {
      auto w = origin.WriteU64(p * machine.page_size(), 500 + p);
      machine.Run();
      EXPECT_TRUE(w.ready() && IsOk(w.value()));
    }
    TaskMemory* current = &origin;
    for (int hop = 1; hop <= kChain; ++hop) {
      auto fork = machine.RemoteFork(hop - 1, *current, hop);
      machine.Run();
      EXPECT_TRUE(fork.ready());
      current = &machine.WrapMap(hop, fork.value());
    }
    for (VmOffset p = 0; p < kPages; ++p) {
      uint64_t v = 0;
      const double ms = MeasureReadMs(machine, *current, p * machine.page_size(), &v);
      EXPECT_EQ(v, 500 + p);
      digest = Fnv1a(digest, v);
      digest = Fnv1a(digest, std::bit_cast<uint64_t>(ms));
    }
  } else {
    ADD_FAILURE() << "unknown workload " << workload;
  }

  digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  digest = FoldString(digest, ChromeTraceJson(trace));
  return digest;
}

class WorkloadMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadMatrixTest, TimelineMatchesAcrossShardCounts) {
  const std::string workload = GetParam();
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
    const uint64_t single = WorkloadDigest(kind, workload, 1);
    for (int shards : {2, 4, 8}) {
      EXPECT_EQ(WorkloadDigest(kind, workload, shards), single)
          << workload << " under " << ToString(kind) << " diverged at shards=" << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadMatrixTest,
                         ::testing::Values("em3d", "sor", "file-read", "file-write",
                                           "fork-chain"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Failover regime --------------------------------------------------------------
//
// The hardest ordering regime: the kill-manager profile removes node 0 mid-run
// and every surviving origin independently detects the silence, races to
// enqueue the promotion mutation, and replays its request against the new
// manager. The mutation-at-barrier rule must make all of that — detection
// order, the single winning promotion, reissues, shadow reconstruction —
// byte-identical at every shard count, down to the Chrome trace JSON.

struct FailoverDigest {
  uint64_t digest = 0;
  std::string stats;       // text dump of every failover/fault counter
  std::string trace_json;  // full Chrome trace of the run
};

FailoverDigest KillManagerDigest(DsmKind kind, int shards) {
  MachineConfig config;
  config.nodes = 8;
  config.dsm = kind;
  config.shards = shards;
  config.nodes_per_io_group = 2;  // 4 shard blocks: shards up to 4 are real
  EXPECT_TRUE(FaultProfileFromName("kill-manager", 1, config.nodes, &config.fault));
  config.retry.timeout_ns = 2 * kMillisecond;
  config.failover.enabled = true;
  Machine machine(config);
  TraceBuffer trace(1 << 20);
  machine.AttachMonitor(&trace);

  constexpr VmSize kPages = 6;
  MemObjectId region = machine.CreateSharedRegion(0, kPages);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 8; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }

  uint64_t digest = 14695981039346656037ULL;
  // Healthy phase: survivors spread ownership and copies around.
  for (VmSize p = 0; p < kPages; ++p) {
    const VmOffset addr = p * machine.page_size();
    auto w = mems[1 + p % 7]->WriteU64(addr, 4000 + p);
    machine.Run();
    auto r = mems[1 + (p + 2) % 7]->ReadU64(addr);
    machine.Run();
    digest = Fnv1a(digest, r.ready() ? r.value() : ~0ULL);
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }
  // Cross the kill at 200 ms, then read and write through the promotion.
  machine.engine().Schedule(200 * kMillisecond + kMillisecond - machine.Now(), []() {});
  machine.Run();
  for (VmSize p = 0; p < kPages; ++p) {
    const VmOffset addr = p * machine.page_size();
    auto r = mems[1 + (p + 4) % 7]->ReadU64(addr);
    machine.Run();
    digest = Fnv1a(digest, r.ready() ? r.value() : ~0ULL);
    auto w = mems[1 + (p + 5) % 7]->WriteU64(addr, 5000 + p);
    machine.Run();
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }

  FailoverDigest out;
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  for (const char* stat :
       {kStatPromotions, kStatShadowUpdates, kStatLeaseReclaims, kStatReconstructedPages,
        kStatReissues, kStatIvyChainCuts, kStatIvyOwnerReclaims, kStatIvyHarvestedPages,
        "dsm.op_node_down", "dsm.op_timeouts", "dsm.op_retries",
        "dsm.duplicates_suppressed", "fault.messages_dropped",
        "fault.messages_dropped.node0"}) {
    out.stats += std::string(stat) + "=" +
                 std::to_string(machine.stats().Get(stat)) + "\n";
  }
  out.trace_json = ChromeTraceJson(trace);
  out.digest = FoldString(FoldString(digest, out.stats), out.trace_json);
  if (kind == DsmKind::kIvy) {
    // IVY has no manager to promote. In this workload every page's ownership
    // migrated off the victim before it died, so recovery is detecting the
    // corpse (op_node_down) and repairing the chains through it; a reclaim
    // only happens when the victim still owned a page.
    EXPECT_GE(machine.stats().Get(kStatIvyOwnerReclaims) +
                  machine.stats().Get("dsm.op_node_down"),
              1)
        << ToString(kind) << " at shards=" << shards;
  } else {
    EXPECT_GE(machine.stats().Get(kStatPromotions), 1)
        << ToString(kind) << " at shards=" << shards;
  }
  return out;
}

TEST(ShardedDeterminismTest, KillManagerRecoveryMatchesAcrossShardCounts) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm, DsmKind::kIvy}) {
    const FailoverDigest single = KillManagerDigest(kind, 1);
    for (int shards : {2, 4}) {
      const FailoverDigest sharded = KillManagerDigest(kind, shards);
      EXPECT_EQ(sharded.stats, single.stats)
          << ToString(kind) << ": failover counters diverged at shards=" << shards;
      EXPECT_TRUE(sharded.trace_json == single.trace_json)
          << ToString(kind) << ": recovery trace JSON differs at shards=" << shards
          << " (" << single.trace_json.size() << " vs " << sharded.trace_json.size()
          << " bytes)";
      EXPECT_EQ(sharded.digest, single.digest)
          << ToString(kind) << " recovery diverged at shards=" << shards;
    }
  }
}

// --- Mutation-ordering unit test --------------------------------------------------

TEST(ClusterMutatorTest, SameTimestampMutationsApplyInNodeSeqOrder) {
  // Four mutations enqueued from driver context (all engines at t=0) out of
  // node order must apply in (origin node, per-origin seq) order — the rule
  // that makes the apply sequence identical at every shard count.
  for (int shards : {1, 3}) {
    MachineConfig config;
    config.nodes = 6;
    config.shards = shards;
    config.nodes_per_io_group = 2;
    Machine machine(config);
    Cluster& cluster = machine.cluster();
    std::vector<int> log;
    cluster.mutator().Enqueue(4, [&log]() { log.push_back(40); });
    cluster.mutator().Enqueue(0, [&log]() { log.push_back(1); });
    cluster.mutator().Enqueue(2, [&log]() { log.push_back(20); });
    cluster.mutator().Enqueue(0, [&log]() { log.push_back(2); });
    machine.Run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 20, 40})) << "at shards=" << shards;
  }
}

}  // namespace
}  // namespace asvm
