#include <gtest/gtest.h>

#include <string>

#include "src/common/lru_cache.h"

namespace asvm {
namespace {

TEST(LruCacheTest, PutGetRoundTrip) {
  LruCache<int, std::string> cache(4);
  cache.Put(1, "one");
  cache.Put(2, "two");
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  EXPECT_EQ(*cache.Get(2), "two");
  EXPECT_EQ(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  cache.Get(1);     // 1 is now most recent; 2 is LRU
  cache.Put(4, 40);  // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_NE(cache.Get(4), nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, PutRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh 1; 2 becomes LRU
  cache.Put(3, 30);  // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(LruCacheTest, PeekDoesNotRefresh) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(*cache.Peek(1), 10);  // no recency change: 1 is still LRU
  cache.Put(3, 30);               // evicts 1
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, CapacityOneDegeneratesGracefully) {
  LruCache<int, int> cache(1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(2), 20);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, StressAgainstReference) {
  // Randomized cross-check against a naive reference implementation.
  LruCache<int, int> cache(8);
  std::list<std::pair<int, int>> reference;  // front = most recent
  uint64_t x = 12345;
  auto next = [&x]() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((x >> 33) % 20);
  };
  for (int i = 0; i < 2000; ++i) {
    const int key = next();
    if (i % 3 == 0) {
      // Put
      const int value = i;
      cache.Put(key, value);
      reference.remove_if([&](const auto& kv) { return kv.first == key; });
      reference.emplace_front(key, value);
      if (reference.size() > 8) {
        reference.pop_back();
      }
    } else {
      // Get
      auto it = std::find_if(reference.begin(), reference.end(),
                             [&](const auto& kv) { return kv.first == key; });
      int* got = cache.Get(key);
      if (it == reference.end()) {
        ASSERT_EQ(got, nullptr) << "iteration " << i;
      } else {
        ASSERT_NE(got, nullptr) << "iteration " << i;
        ASSERT_EQ(*got, it->second);
        reference.splice(reference.begin(), reference, it);
      }
    }
    ASSERT_EQ(cache.size(), reference.size());
  }
}

}  // namespace
}  // namespace asvm
