// Machine facade: construction of both systems, region/file APIs, remote
// forks, and DSM-agnostic behaviour.
#include <gtest/gtest.h>

#include "src/core/machine.h"
#include "src/core/measure.h"

namespace asvm {
namespace {

MachineConfig TestConfig(DsmKind kind, int nodes) {
  MachineConfig config;
  config.nodes = nodes;
  config.dsm = kind;
  return config;
}

class MachineBothSystems : public ::testing::TestWithParam<DsmKind> {};

TEST_P(MachineBothSystems, SharedRegionBasics) {
  Machine machine(TestConfig(GetParam(), 4));
  MemObjectId region = machine.CreateSharedRegion(0, 32);
  TaskMemory& a = machine.MapRegion(0, region);
  TaskMemory& b = machine.MapRegion(2, region);

  auto w = a.WriteU64(100, 7);
  machine.Run();
  ASSERT_TRUE(w.ready());
  auto r = b.ReadU64(100);
  machine.Run();
  ASSERT_TRUE(r.ready());
  EXPECT_EQ(r.value(), 7u);
}

TEST_P(MachineBothSystems, MappedFileRoundTrip) {
  Machine machine(TestConfig(GetParam(), 4));
  MemObjectId file = machine.CreateMappedFile("data", 16, /*prefilled=*/false);
  TaskMemory& a = machine.MapRegion(1, file);
  TaskMemory& b = machine.MapRegion(3, file);
  auto w = a.WriteU64(5 * 8192, 12345);
  machine.Run();
  ASSERT_TRUE(w.ready());
  auto r = b.ReadU64(5 * 8192);
  machine.Run();
  ASSERT_TRUE(r.ready());
  EXPECT_EQ(r.value(), 12345u);
}

TEST_P(MachineBothSystems, RemoteForkSnapshot) {
  Machine machine(TestConfig(GetParam(), 2));
  TaskMemory& parent = machine.CreatePrivateTask(0, 8);
  auto w = parent.WriteU64(0, 55);
  machine.Run();
  ASSERT_TRUE(w.ready());

  auto fork = machine.RemoteFork(0, parent, 1);
  machine.Run();
  ASSERT_TRUE(fork.ready());
  TaskMemory& child = machine.WrapMap(1, fork.value());
  auto r = child.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r.ready());
  EXPECT_EQ(r.value(), 55u);

  auto pw = parent.WriteU64(0, 77);
  machine.Run();
  ASSERT_TRUE(pw.ready());
  auto r2 = child.ReadU64(0);
  machine.Run();
  EXPECT_EQ(r2.value(), 55u) << "delayed-copy snapshot must hold";
}

TEST_P(MachineBothSystems, MeasureHelpersReportLatency) {
  Machine machine(TestConfig(GetParam(), 4));
  MemObjectId region = machine.CreateSharedRegion(0, 8);
  TaskMemory& a = machine.MapRegion(1, region);
  double ms = MeasureWriteMs(machine, a, 0, 1);
  EXPECT_GT(ms, 0.1);
  EXPECT_LT(ms, 100.0);
  TaskMemory& b = machine.MapRegion(2, region);
  uint64_t v = 0;
  double rms = MeasureReadMs(machine, b, 0, &v);
  EXPECT_EQ(v, 1u);
  EXPECT_GT(rms, 0.1);
}

INSTANTIATE_TEST_SUITE_P(BothSystems, MachineBothSystems,
                         ::testing::Values(DsmKind::kAsvm, DsmKind::kXmm),
                         [](const ::testing::TestParamInfo<DsmKind>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(MachineConfigTest, ParagonDefaults) {
  MachineConfig config;
  EXPECT_EQ(config.page_size, 8192u);
  ClusterParams params = config.ToClusterParams();
  EXPECT_EQ(params.vm.frame_capacity, 9u * 1024 * 1024 / 8192);
}

TEST(MachineConfigTest, DsmKindNames) {
  EXPECT_STREQ(ToString(DsmKind::kAsvm), "ASVM");
  EXPECT_STREQ(ToString(DsmKind::kXmm), "XMM");
}

TEST(MachineTest, AsvmIsFasterThanXmmOnRemoteWriteFault) {
  // The headline comparison, as a smoke check at machine level.
  double latencies[2];
  int i = 0;
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    Machine machine(TestConfig(kind, 8));
    MemObjectId region = machine.CreateSharedRegion(0, 8);
    TaskMemory& writer = machine.MapRegion(1, region);
    auto w = writer.WriteU64(0, 1);
    machine.Run();
    ASSERT_TRUE(w.ready());
    TaskMemory& reader = machine.MapRegion(2, region);
    MeasureReadMs(machine, reader, 0);
    TaskMemory& writer2 = machine.MapRegion(3, region);
    latencies[i++] = MeasureWriteMs(machine, writer2, 0, 2);
  }
  EXPECT_LT(latencies[0] * 2, latencies[1])
      << "ASVM write fault should be much faster than XMM's";
}

TEST(MachineTest, MetadataComparisonAcrossSystems) {
  // ASVM metadata ~ resident pages; XMM manager ~ pages x nodes.
  MachineConfig asvm_cfg = TestConfig(DsmKind::kAsvm, 16);
  Machine asvm_machine(asvm_cfg);
  MachineConfig xmm_cfg = TestConfig(DsmKind::kXmm, 16);
  Machine xmm_machine(xmm_cfg);

  const VmSize pages = 2048;  // 16 MB object
  for (Machine* m : {&asvm_machine, &xmm_machine}) {
    MemObjectId region = m->CreateSharedRegion(0, pages);
    TaskMemory& t = m->MapRegion(1, region);
    auto w = t.WriteU64(0, 1);  // touch one page
    m->Run();
    ASSERT_TRUE(w.ready());
  }
  // XMM's manager burns pages x nodes bytes even though one page is in use.
  EXPECT_GE(xmm_machine.DsmMetadataBytes(0), pages * 16);
  EXPECT_LT(asvm_machine.DsmMetadataBytes(0) + asvm_machine.DsmMetadataBytes(1),
            pages * 16 / 4);
}

}  // namespace
}  // namespace asvm
