// §6 future-work extensions: page-range locking built on ASVM ownership, and
// striped file regions (the UFS/PFS hybrid).
#include <gtest/gtest.h>

#include "src/asvm/range_lock.h"
#include "src/core/machine.h"
#include "src/core/measure.h"
#include "src/mappedfs/file_bench.h"
#include "src/sim/task.h"

namespace asvm {
namespace {

class RangeLockTest : public ::testing::Test {
 protected:
  RangeLockTest() {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = DsmKind::kAsvm;
    machine_ = std::make_unique<Machine>(config);
    system_ = static_cast<AsvmSystem*>(&machine_->dsm());
    locks_ = std::make_unique<RangeLockService>(*system_);
    region_ = machine_->CreateSharedRegion(0, 16);
  }

  std::unique_ptr<Machine> machine_;
  AsvmSystem* system_ = nullptr;
  std::unique_ptr<RangeLockService> locks_;
  MemObjectId region_;
};

TEST_F(RangeLockTest, AcquireGivesExclusiveWriteAccess) {
  TaskMemory& holder = machine_->MapRegion(1, region_);
  auto acquired = locks_->Acquire(1, holder, region_, 0, 2 * 8192);
  machine_->Run();
  ASSERT_TRUE(acquired.ready());
  ASSERT_EQ(acquired.value(), Status::kOk);

  // While held, another node's read parks; it must not complete.
  TaskMemory& intruder = machine_->MapRegion(2, region_);
  auto read = intruder.ReadU64(0);
  machine_->Run();
  EXPECT_FALSE(read.ready()) << "request must queue behind the range lock";

  // The holder updates both pages "atomically" w.r.t. the intruder.
  ASSERT_TRUE(holder.TryWriteU64(0, 111));
  ASSERT_TRUE(holder.TryWriteU64(8192, 222));

  locks_->Release(1, region_, 0, 2 * 8192, 8192);
  machine_->Run();
  ASSERT_TRUE(read.ready());
  EXPECT_EQ(read.value(), 111u);
  TaskMemory& checker = machine_->MapRegion(3, region_);
  auto second = checker.ReadU64(8192);
  machine_->Run();
  ASSERT_TRUE(second.ready());
  EXPECT_EQ(second.value(), 222u);
}

TEST_F(RangeLockTest, HolderKeepsFastLocalAccess) {
  TaskMemory& holder = machine_->MapRegion(1, region_);
  auto acquired = locks_->Acquire(1, holder, region_, 0, 4 * 8192);
  machine_->Run();
  ASSERT_TRUE(acquired.ready());
  uint64_t v = 1;
  for (VmOffset p = 0; p < 4; ++p) {
    EXPECT_TRUE(holder.TryWriteU64(p * 8192, v++)) << "held pages stay write-mapped";
  }
  locks_->Release(1, region_, 0, 4 * 8192, 8192);
  machine_->Run();
}

TEST_F(RangeLockTest, OverlappingAcquisitionsSerializeWithoutDeadlock) {
  TaskMemory& a = machine_->MapRegion(1, region_);
  TaskMemory& b = machine_->MapRegion(2, region_);

  auto lock_a = locks_->Acquire(1, a, region_, 0, 3 * 8192);       // pages 0..2
  auto lock_b = locks_->Acquire(2, b, region_, 8192, 3 * 8192);    // pages 1..3
  machine_->Run();
  // Exactly one holds the contested pages; the other waits.
  EXPECT_TRUE(lock_a.ready() || lock_b.ready());
  EXPECT_FALSE(lock_a.ready() && lock_b.ready());

  if (lock_a.ready()) {
    locks_->Release(1, region_, 0, 3 * 8192, 8192);
  } else {
    locks_->Release(2, region_, 8192, 3 * 8192, 8192);
  }
  machine_->Run();
  EXPECT_TRUE(lock_a.ready() && lock_b.ready()) << "second acquisition completes after release";
  // Clean up whichever is still held.
  locks_->Release(1, region_, 0, 3 * 8192, 8192);
  locks_->Release(2, region_, 8192, 3 * 8192, 8192);
  machine_->Run();
}

TEST_F(RangeLockTest, HeldPagesSurviveMemoryPressure) {
  MachineConfig config;
  config.nodes = 2;
  config.dsm = DsmKind::kAsvm;
  config.user_memory_bytes = 16 * 8192;  // 16 frames
  Machine machine(config);
  auto* system = static_cast<AsvmSystem*>(&machine.dsm());
  RangeLockService locks(*system);
  MemObjectId region = machine.CreateSharedRegion(0, 64);
  TaskMemory& holder = machine.MapRegion(1, region);

  auto acquired = locks.Acquire(1, holder, region, 0, 4 * 8192);
  machine.Run();
  ASSERT_TRUE(acquired.ready());
  ASSERT_TRUE(holder.TryWriteU64(0, 777));

  // Thrash the node: held pages are wired and must not be evicted.
  for (VmOffset p = 8; p < 48; ++p) {
    auto w = holder.WriteU64(p * 8192, p);
    machine.Run();
  }
  uint64_t v = 0;
  EXPECT_TRUE(holder.TryReadU64(0, &v)) << "held page must remain resident";
  EXPECT_EQ(v, 777u);
  locks.Release(1, region, 0, 4 * 8192, 8192);
  machine.Run();
}

// --- Striped regions -----------------------------------------------------------

MachineConfig StripedConfig(DsmKind kind, int nodes, int pagers) {
  MachineConfig config;
  config.nodes = nodes;
  config.dsm = kind;
  config.file_pager_count = pagers;
  return config;
}

class StripingBothSystems : public ::testing::TestWithParam<DsmKind> {};

TEST_P(StripingBothSystems, StripedContentsRoundTrip) {
  Machine machine(StripedConfig(GetParam(), 8, 4));
  MemObjectId region = machine.CreateStripedFile("data", 32, /*stripes=*/4,
                                                 /*prefilled=*/false);
  TaskMemory& writer = machine.MapRegion(5, region);
  for (VmOffset p = 0; p < 32; ++p) {
    auto w = writer.WriteU64(p * 8192, 9000 + p);
    machine.Run();
    ASSERT_TRUE(w.ready());
  }
  TaskMemory& reader = machine.MapRegion(6, region);
  for (VmOffset p = 0; p < 32; ++p) {
    auto r = reader.ReadU64(p * 8192);
    machine.Run();
    ASSERT_TRUE(r.ready());
    EXPECT_EQ(r.value(), 9000 + p) << "page " << p;
  }
}

TEST_P(StripingBothSystems, PrefilledStripesServeDeterministicData) {
  Machine machine(StripedConfig(GetParam(), 8, 4));
  MemObjectId region = machine.CreateStripedFile("pre", 16, /*stripes=*/4,
                                                 /*prefilled=*/true);
  TaskMemory& a = machine.MapRegion(5, region);
  TaskMemory& b = machine.MapRegion(6, region);
  for (VmOffset p = 0; p < 16; ++p) {
    auto ra = a.ReadU64(p * 8192);
    machine.Run();
    auto rb = b.ReadU64(p * 8192);
    machine.Run();
    ASSERT_TRUE(ra.ready() && rb.ready());
    EXPECT_EQ(ra.value(), rb.value()) << "both nodes see the same stripe data";
  }
}

INSTANTIATE_TEST_SUITE_P(BothSystems, StripingBothSystems,
                         ::testing::Values(DsmKind::kAsvm, DsmKind::kXmm),
                         [](const ::testing::TestParamInfo<DsmKind>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(StripingScalingTest, StripesMultiplyAsvmColdReadBandwidth) {
  // The PFS pattern: 8 nodes stream disjoint sections of a cold file. With
  // one stripe everything funnels through one disk; with four the disks and
  // pagers run in parallel.
  auto read_rate = [](int stripes) {
    Machine machine(StripedConfig(DsmKind::kAsvm, 12, stripes));
    MemObjectId region =
        machine.CreateStripedFile("f", 256, stripes, /*prefilled=*/true);
    return RunParallelFileReadSections(machine, region, 256, 8, /*first_node=*/4)
        .per_node_mb_s;
  };
  const double one = read_rate(1);
  const double four = read_rate(4);
  EXPECT_GT(four, one * 2) << "4 stripes should at least double cold throughput";
}

TEST(StripingScalingTest, XmmStripesStillManagerBound) {
  // All 8 nodes read the whole striped file: once pages are cached, serving
  // is owner-to-owner under ASVM but still funnels through the single
  // centralized manager under XMM — striping the disks cannot fix that.
  auto read_rate = [](DsmKind kind) {
    Machine machine(StripedConfig(kind, 12, 4));
    MemObjectId region = machine.CreateStripedFile("f", 128, 4, /*prefilled=*/true);
    return RunParallelFileRead(machine, region, 128, 8, /*first_node=*/4).per_node_mb_s;
  };
  EXPECT_GT(read_rate(DsmKind::kAsvm), read_rate(DsmKind::kXmm) * 2);
}

}  // namespace
}  // namespace asvm
