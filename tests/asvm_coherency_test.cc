// ASVM shared-memory coherency: the Figure 7 state machine, forwarding
// tiers, ownership migration, and strong coherence on real data.
#include <gtest/gtest.h>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class AsvmCoherencyTest : public ::testing::Test {
 protected:
  void Build(int nodes, AsvmConfig config = {}) {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(nodes));
    system_ = std::make_unique<AsvmSystem>(*cluster_, config);
    region_ = system_->CreateSharedRegion(/*home=*/0, /*pages=*/16);
    harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, 16);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<AsvmSystem> system_;
  MemObjectId region_;
  std::unique_ptr<DsmRegionHarness> harness_;
};

TEST_F(AsvmCoherencyTest, FreshPageReadsAsZero) {
  Build(4);
  EXPECT_EQ(harness_->Read(1, 0), 0u);
  EXPECT_EQ(harness_->Read(2, 4096), 0u);
}

TEST_F(AsvmCoherencyTest, WriteThenRemoteRead) {
  Build(4);
  harness_->Write(0, 0, 42);
  EXPECT_EQ(harness_->Read(1, 0), 42u);
  EXPECT_EQ(harness_->Read(2, 0), 42u);
  EXPECT_EQ(harness_->Read(3, 0), 42u);
}

TEST_F(AsvmCoherencyTest, WriteMigratesOwnershipAndData) {
  Build(4);
  harness_->Write(0, 0, 1);
  harness_->Write(1, 0, 2);
  harness_->Write(2, 0, 3);
  EXPECT_EQ(harness_->Read(0, 0), 3u);
  EXPECT_EQ(harness_->Read(3, 0), 3u);
}

TEST_F(AsvmCoherencyTest, StrongCoherenceAfterInvalidation) {
  Build(4);
  harness_->Write(0, 0, 10);
  // B and C acquire read copies.
  EXPECT_EQ(harness_->Read(1, 0), 10u);
  EXPECT_EQ(harness_->Read(2, 0), 10u);
  // A upgrades in place (transition 7): readers must be invalidated.
  harness_->Write(0, 0, 11);
  EXPECT_EQ(harness_->Read(1, 0), 11u);
  EXPECT_EQ(harness_->Read(2, 0), 11u);
}

TEST_F(AsvmCoherencyTest, WriterStealsFromReaderSet) {
  Build(4);
  harness_->Write(0, 0, 5);
  EXPECT_EQ(harness_->Read(1, 0), 5u);
  EXPECT_EQ(harness_->Read(2, 0), 5u);
  // Node 3 (not a reader) writes: old copies must all be invalidated.
  harness_->Write(3, 0, 6);
  EXPECT_EQ(harness_->Read(0, 0), 6u);
  EXPECT_EQ(harness_->Read(1, 0), 6u);
  EXPECT_EQ(harness_->Read(2, 0), 6u);
}

TEST_F(AsvmCoherencyTest, UpgradeFaultKeepsData) {
  Build(4);
  harness_->Write(0, 0, 7);
  EXPECT_EQ(harness_->Read(1, 0), 7u);
  // Node 1 already holds a read copy; the upgrade transfers ownership
  // without the page contents.
  const int64_t pages_before = cluster_->stats().Get("transport.sts.page_messages");
  harness_->Write(1, 8, 8);
  const int64_t pages_after = cluster_->stats().Get("transport.sts.page_messages");
  EXPECT_EQ(pages_after, pages_before) << "upgrade must not move page contents";
  EXPECT_EQ(harness_->Read(1, 0), 7u);
  EXPECT_EQ(harness_->Read(0, 8), 8u);
}

TEST_F(AsvmCoherencyTest, DistinctPagesAreIndependent) {
  Build(4);
  for (NodeId n = 0; n < 4; ++n) {
    harness_->Write(n, static_cast<VmOffset>(n) * 4096, 100u + static_cast<uint64_t>(n));
  }
  for (NodeId n = 0; n < 4; ++n) {
    for (NodeId m = 0; m < 4; ++m) {
      EXPECT_EQ(harness_->Read(n, static_cast<VmOffset>(m) * 4096),
                100u + static_cast<uint64_t>(m));
    }
  }
}

TEST_F(AsvmCoherencyTest, OwnershipChaseThroughHints) {
  Build(8);
  // Bounce ownership around, then have an uninvolved node locate it.
  for (int round = 0; round < 3; ++round) {
    for (NodeId n = 0; n < 6; ++n) {
      harness_->Write(n, 0, static_cast<uint64_t>(round * 10 + n));
    }
  }
  EXPECT_EQ(harness_->Read(7, 0), 25u);
}

TEST_F(AsvmCoherencyTest, GlobalOnlyForwardingIsCorrect) {
  AsvmConfig config;
  config.dynamic_forwarding = false;
  config.static_forwarding = false;
  Build(4, config);
  harness_->Write(0, 0, 1);
  harness_->Write(2, 0, 2);
  EXPECT_EQ(harness_->Read(1, 0), 2u);
  EXPECT_EQ(harness_->Read(3, 0), 2u);
  EXPECT_GT(cluster_->stats().Get("asvm.fwd_global_started"), 0);
}

TEST_F(AsvmCoherencyTest, StaticOnlyForwardingIsCorrect) {
  AsvmConfig config;
  config.dynamic_forwarding = false;
  Build(4, config);
  harness_->Write(0, 0, 1);
  harness_->Write(2, 0, 2);
  EXPECT_EQ(harness_->Read(1, 0), 2u);
  EXPECT_GT(cluster_->stats().Get("asvm.fwd_static"), 0);
}

TEST_F(AsvmCoherencyTest, DynamicForwardingUsesHints) {
  Build(4);
  harness_->Write(0, 0, 1);
  EXPECT_EQ(harness_->Read(1, 0), 1u);
  // Node 1 now hints node 0; a second access on another page of the same
  // owner path exercises dynamic hits over time.
  EXPECT_EQ(harness_->Read(1, 0), 1u);
  harness_->Write(1, 0, 2);
  EXPECT_EQ(harness_->Read(0, 0), 2u);
  EXPECT_GT(cluster_->stats().Get("asvm.fwd_dynamic"), 0);
}

TEST_F(AsvmCoherencyTest, OwnerResidencyInvariant) {
  Build(4);
  harness_->Write(0, 0, 1);
  harness_->Write(1, 0, 2);
  EXPECT_EQ(harness_->Read(2, 0), 2u);
  // Exactly one owner, and the owner has the page resident.
  int owners = 0;
  for (NodeId n = 0; n < 4; ++n) {
    auto* os = system_->agent(n).FindObjState(region_);
    if (os == nullptr) {
      continue;
    }
    const auto* ps = os->pages.Find(0);
    if (ps != nullptr && ps->owner) {
      ++owners;
      ASSERT_NE(os->repr, nullptr);
      EXPECT_NE(os->repr->FindResident(0), nullptr)
          << "owner must cache the page (node " << n << ")";
    }
  }
  EXPECT_EQ(owners, 1);
}

TEST_F(AsvmCoherencyTest, SingleWriterInvariant) {
  Build(4);
  harness_->Write(0, 0, 1);
  EXPECT_EQ(harness_->Read(1, 0), 1u);
  harness_->Write(2, 0, 2);
  // After quiescence at most one node may hold write access; write access
  // excludes any other holder.
  int writers = 0;
  int holders = 0;
  for (NodeId n = 0; n < 4; ++n) {
    auto* os = system_->agent(n).FindObjState(region_);
    if (os == nullptr || os->repr == nullptr) {
      continue;
    }
    VmPage* vp = os->repr->FindResident(0);
    if (vp != nullptr) {
      ++holders;
      if (AccessAllows(vp->lock, PageAccess::kWrite)) {
        ++writers;
      }
    }
  }
  EXPECT_EQ(writers, 1);
  EXPECT_EQ(holders, 1) << "a write grant must flush all other copies";
}

TEST_F(AsvmCoherencyTest, MetadataIsBoundedByResidency) {
  Build(4);
  for (int p = 0; p < 8; ++p) {
    harness_->Write(0, static_cast<VmOffset>(p) * 4096, static_cast<uint64_t>(p));
  }
  // Nodes that never touched the region hold (almost) no page state.
  size_t untouched = system_->MetadataBytes(3);
  size_t owner = system_->MetadataBytes(0);
  EXPECT_GT(owner, untouched);
}

TEST_F(AsvmCoherencyTest, ManyNodesManyPagesStress) {
  Build(8);
  for (int round = 0; round < 4; ++round) {
    for (NodeId n = 0; n < 8; ++n) {
      for (int p = 0; p < 4; ++p) {
        harness_->Write(n, static_cast<VmOffset>(p) * 4096,
                        static_cast<uint64_t>(round * 1000 + n * 10 + p));
      }
    }
  }
  // Last writer was node 7 in round 3.
  for (int p = 0; p < 4; ++p) {
    const uint64_t expect = 3 * 1000 + 7 * 10 + static_cast<uint64_t>(p);
    for (NodeId n = 0; n < 8; ++n) {
      EXPECT_EQ(harness_->Read(n, static_cast<VmOffset>(p) * 4096), expect);
    }
  }
}

}  // namespace
}  // namespace asvm
