// ASVM delayed-copy management across nodes (§3.7): remote forks, push and
// pull operations, version counters, copy chains spanning nodes (Figure 9),
// and push scans on shared copy objects.
#include <gtest/gtest.h>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "src/machvm/task_memory.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class AsvmCopyTest : public ::testing::Test {
 protected:
  void Build(int nodes, size_t frames = 512) {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(nodes, frames));
    system_ = std::make_unique<AsvmSystem>(*cluster_);
  }

  // Builds a parent task on `node` with an anonymous region of `pages` pages
  // (inheritance: copy) and returns its memory accessor.
  TaskMemory MakeParent(NodeId node, VmSize pages) {
    NodeVm& vm = cluster_->vm(node);
    VmMap* map = vm.CreateMap();
    auto obj = vm.CreateObject(pages, CopyStrategy::kSymmetric);
    EXPECT_EQ(map->Map(0, pages, obj, 0, Inheritance::kCopy), Status::kOk);
    return TaskMemory(vm, *map);
  }

  TaskMemory Fork(NodeId src, TaskMemory& parent, NodeId dst) {
    auto f = system_->RemoteFork(src, parent.map(), dst);
    cluster_->Run();
    EXPECT_TRUE(f.ready());
    return TaskMemory(cluster_->vm(dst), *f.value());
  }

  uint64_t Read(TaskMemory& mem, VmOffset addr) {
    auto f = mem.ReadU64(addr);
    cluster_->Run();
    EXPECT_TRUE(f.ready()) << "read did not complete";
    return f.ready() ? f.value() : ~0ULL;
  }

  void Write(TaskMemory& mem, VmOffset addr, uint64_t value) {
    auto f = mem.WriteU64(addr, value);
    cluster_->Run();
    ASSERT_TRUE(f.ready());
    ASSERT_EQ(f.value(), Status::kOk);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<AsvmSystem> system_;
};

TEST_F(AsvmCopyTest, RemoteForkChildSeesParentSnapshot) {
  Build(2);
  TaskMemory parent = MakeParent(0, 8);
  Write(parent, 0, 100);
  Write(parent, 4096, 200);

  TaskMemory child = Fork(0, parent, 1);
  EXPECT_EQ(Read(child, 0), 100u);
  EXPECT_EQ(Read(child, 4096), 200u);
  EXPECT_EQ(Read(child, 2 * 4096), 0u);  // untouched page: zero
}

TEST_F(AsvmCopyTest, ParentWriteAfterForkIsInvisibleToChild) {
  Build(2);
  TaskMemory parent = MakeParent(0, 8);
  Write(parent, 0, 100);
  TaskMemory child = Fork(0, parent, 1);

  // The push operation must deliver the pre-write value to the copy.
  Write(parent, 0, 999);
  EXPECT_EQ(Read(child, 0), 100u);
  EXPECT_EQ(Read(parent, 0), 999u);
  EXPECT_GT(cluster_->stats().Get("asvm.push_operations"), 0);
}

TEST_F(AsvmCopyTest, ChildWriteDoesNotDisturbParent) {
  Build(2);
  TaskMemory parent = MakeParent(0, 8);
  Write(parent, 0, 100);
  TaskMemory child = Fork(0, parent, 1);

  Write(child, 0, 555);
  EXPECT_EQ(Read(parent, 0), 100u);
  EXPECT_EQ(Read(child, 0), 555u);
}

TEST_F(AsvmCopyTest, PushHappensOnlyOncePerCopyEpoch) {
  Build(2);
  TaskMemory parent = MakeParent(0, 8);
  Write(parent, 0, 1);
  TaskMemory child = Fork(0, parent, 1);

  Write(parent, 0, 2);
  const int64_t pushes = cluster_->stats().Get("asvm.push_operations");
  Write(parent, 0, 3);  // same epoch: version counters suppress a second push
  Write(parent, 8, 4);
  EXPECT_EQ(cluster_->stats().Get("asvm.push_operations"), pushes);
  EXPECT_EQ(Read(child, 0), 1u);
}

TEST_F(AsvmCopyTest, ForkChainAcrossThreeNodes) {
  // The Figure 9 scenario: A forks to B, B forks to C; a fault on C walks
  // the chain back to the original data on A.
  Build(3);
  TaskMemory gen0 = MakeParent(0, 8);
  Write(gen0, 0, 11);
  Write(gen0, 4096, 22);

  TaskMemory gen1 = Fork(0, gen0, 1);
  TaskMemory gen2 = Fork(1, gen1, 2);

  EXPECT_EQ(Read(gen2, 0), 11u);
  EXPECT_EQ(Read(gen2, 4096), 22u);
  EXPECT_GT(cluster_->stats().Get("asvm.pull_chain_forwards"), 0)
      << "the pull should have traversed managed shadow objects";
}

TEST_F(AsvmCopyTest, ChainSnapshotsAreIndependentPerGeneration) {
  Build(3);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 10);
  TaskMemory gen1 = Fork(0, gen0, 1);
  Write(gen1, 0, 20);
  TaskMemory gen2 = Fork(1, gen1, 2);
  Write(gen2, 0, 30);

  EXPECT_EQ(Read(gen0, 0), 10u);
  EXPECT_EQ(Read(gen1, 0), 20u);
  EXPECT_EQ(Read(gen2, 0), 30u);
}

TEST_F(AsvmCopyTest, WritesBetweenGenerationsPreserveSnapshots) {
  Build(3);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 1);
  TaskMemory gen1 = Fork(0, gen0, 1);
  Write(gen0, 0, 2);  // pushes 1 into gen1's copy
  TaskMemory gen2 = Fork(1, gen1, 2);
  Write(gen1, 0, 3);  // hmm: gen1's copy object gets its own write

  EXPECT_EQ(Read(gen2, 0), 1u) << "grandchild sees gen1's value at fork time";
  EXPECT_EQ(Read(gen1, 0), 3u);
  EXPECT_EQ(Read(gen0, 0), 2u);
}

TEST_F(AsvmCopyTest, TwoCopiesOfSameSourceFormChain) {
  Build(3);
  TaskMemory parent = MakeParent(0, 4);
  Write(parent, 0, 7);
  TaskMemory child1 = Fork(0, parent, 1);
  Write(parent, 0, 8);  // pushes 7 toward child1's epoch
  TaskMemory child2 = Fork(0, parent, 2);
  Write(parent, 0, 9);  // pushes 8 toward child2's epoch

  EXPECT_EQ(Read(child1, 0), 7u);
  EXPECT_EQ(Read(child2, 0), 8u);
  EXPECT_EQ(Read(parent, 0), 9u);
}

TEST_F(AsvmCopyTest, UntouchedPagesStayZeroThroughChains) {
  Build(3);
  TaskMemory gen0 = MakeParent(0, 8);
  TaskMemory gen1 = Fork(0, gen0, 1);
  TaskMemory gen2 = Fork(1, gen1, 2);
  EXPECT_EQ(Read(gen2, 3 * 4096), 0u);
  EXPECT_EQ(Read(gen1, 5 * 4096), 0u);
}

TEST_F(AsvmCopyTest, FreshPageWriteAfterForkPushesZeros) {
  Build(2);
  TaskMemory parent = MakeParent(0, 4);
  TaskMemory child = Fork(0, parent, 1);
  // Page 2 never existed; the parent's first write must still preserve the
  // zero snapshot for the child.
  Write(parent, 2 * 4096, 77);
  EXPECT_EQ(Read(child, 2 * 4096), 0u);
  EXPECT_EQ(Read(parent, 2 * 4096), 77u);
}

TEST_F(AsvmCopyTest, ShareInheritanceRemainsCoherentAcrossFork) {
  Build(2);
  NodeVm& vm0 = cluster_->vm(0);
  VmMap* map = vm0.CreateMap();
  auto obj = vm0.CreateObject(4, CopyStrategy::kSymmetric);
  ASSERT_EQ(map->Map(0, 4, obj, 0, Inheritance::kShare), Status::kOk);
  TaskMemory parent(vm0, *map);
  Write(parent, 0, 1);

  TaskMemory child = Fork(0, parent, 1);
  Write(child, 0, 2);
  EXPECT_EQ(Read(parent, 0), 2u) << "kShare ranges stay coherent, not copied";
  Write(parent, 0, 3);
  EXPECT_EQ(Read(child, 0), 3u);
}

TEST_F(AsvmCopyTest, DeepChainFaultLatencyGrowsSlowly) {
  // Figure 11's shape: latency ~ lb + n * la with small la.
  Build(6);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 42);
  std::vector<TaskMemory> gens;
  gens.push_back(gen0);
  for (NodeId n = 1; n < 6; ++n) {
    gens.push_back(Fork(n - 1, gens.back(), n));
  }
  SimTime start = cluster_->engine().Now();
  EXPECT_EQ(Read(gens.back(), 0), 42u);
  SimDuration deep = cluster_->engine().Now() - start;
  // A five-hop chain should cost single-digit milliseconds, far below five
  // XMM-style round trips.
  EXPECT_LT(deep, 10 * kMillisecond);
  EXPECT_GT(deep, 500 * kMicrosecond);
}

TEST_F(AsvmCopyTest, ReadThroughChainDoesNotCopyIntoIntermediates) {
  Build(3);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 5);
  TaskMemory gen1 = Fork(0, gen0, 1);
  TaskMemory gen2 = Fork(1, gen1, 2);
  const int64_t pushes_before = cluster_->stats().Get("vm.push_supplies");
  EXPECT_EQ(Read(gen2, 0), 5u);
  // A read pull must not trigger push supplies.
  EXPECT_EQ(cluster_->stats().Get("vm.push_supplies"), pushes_before);
}

}  // namespace
}  // namespace asvm
