#include <gtest/gtest.h>

#include <vector>

#include "src/common/stats.h"
#include "src/mesh/network.h"
#include "src/mesh/topology.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

TEST(TopologyTest, RowMajorCoordinates) {
  Topology topo(4, 3);
  EXPECT_EQ(topo.node_count(), 12);
  EXPECT_EQ(topo.XOf(0), 0);
  EXPECT_EQ(topo.YOf(0), 0);
  EXPECT_EQ(topo.XOf(5), 1);
  EXPECT_EQ(topo.YOf(5), 1);
  EXPECT_EQ(topo.XOf(11), 3);
  EXPECT_EQ(topo.YOf(11), 2);
}

TEST(TopologyTest, XyHopCounts) {
  Topology topo(4, 4);
  EXPECT_EQ(topo.Hops(0, 0), 0);
  EXPECT_EQ(topo.Hops(0, 3), 3);    // same row
  EXPECT_EQ(topo.Hops(0, 12), 3);   // same column
  EXPECT_EQ(topo.Hops(0, 15), 6);   // opposite corner
  EXPECT_EQ(topo.Hops(15, 0), 6);   // symmetric
}

TEST(TopologyTest, ForNodeCountIsRoughlySquare) {
  Topology t64 = Topology::ForNodeCount(64);
  EXPECT_EQ(t64.width(), 8);
  EXPECT_EQ(t64.height(), 8);
  EXPECT_EQ(t64.node_count(), 64);

  Topology t72 = Topology::ForNodeCount(72);
  EXPECT_EQ(t72.node_count(), 72);
  EXPECT_GE(t72.width() * t72.height(), 72);

  Topology t1 = Topology::ForNodeCount(1);
  EXPECT_EQ(t1.node_count(), 1);
  EXPECT_TRUE(t1.Contains(0));
  EXPECT_FALSE(t1.Contains(1));
}

TEST(TopologyTest, ContainsRespectsPartialLastRow) {
  Topology t5 = Topology::ForNodeCount(5);
  EXPECT_TRUE(t5.Contains(4));
  EXPECT_FALSE(t5.Contains(5));
  EXPECT_FALSE(t5.Contains(-1));
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(engine_, Topology(4, 4), MeshParams{}, &stats_) {}

  Engine engine_;
  StatsRegistry stats_;
  Network network_;
};

TEST_F(NetworkTest, UncontendedLatencyMatchesModel) {
  MeshParams p;
  // 8 KB page over 6 hops: setup + 6*hop + 8192/0.2ns.
  SimDuration expected = p.route_setup_ns + 6 * p.per_hop_ns +
                         static_cast<SimDuration>(8192 / p.bandwidth_bytes_per_ns);
  EXPECT_EQ(network_.UncontendedLatency(0, 15, 8192), expected);
}

TEST_F(NetworkTest, DeliversAtModeledTime) {
  SimTime delivered = -1;
  network_.Send(0, 15, 8192, [&]() { delivered = engine_.Now(); });
  engine_.Run();
  EXPECT_EQ(delivered, network_.UncontendedLatency(0, 15, 8192));
}

TEST_F(NetworkTest, SmallMessagesAreFast) {
  SimTime delivered = -1;
  network_.Send(0, 1, 32, [&]() { delivered = engine_.Now(); });
  engine_.Run();
  // 32 bytes at 200 MB/s is 160 ns; total should be well under 1 us.
  EXPECT_LT(delivered, 1000);
  EXPECT_GT(delivered, 0);
}

TEST_F(NetworkTest, SourceInjectionSerializesBackToBackSends) {
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 4; ++i) {
    network_.Send(0, 15, 8192, [&]() { deliveries.push_back(engine_.Now()); });
  }
  engine_.Run();
  ASSERT_EQ(deliveries.size(), 4u);
  const SimDuration ser = static_cast<SimDuration>(8192 / MeshParams{}.bandwidth_bytes_per_ns);
  for (size_t i = 1; i < deliveries.size(); ++i) {
    // Each subsequent page cannot finish earlier than one serialization time
    // after the previous: the source link is the bottleneck.
    EXPECT_GE(deliveries[i] - deliveries[i - 1], ser);
  }
}

TEST_F(NetworkTest, FanInSerializesAtReceiver) {
  // Many senders, one destination: ejection link serializes.
  std::vector<SimTime> deliveries;
  for (NodeId src = 1; src <= 8; ++src) {
    network_.Send(src, 0, 8192, [&]() { deliveries.push_back(engine_.Now()); });
  }
  engine_.Run();
  ASSERT_EQ(deliveries.size(), 8u);
  const SimDuration ser = static_cast<SimDuration>(8192 / MeshParams{}.bandwidth_bytes_per_ns);
  for (size_t i = 1; i < deliveries.size(); ++i) {
    EXPECT_GE(deliveries[i] - deliveries[i - 1], ser);
  }
}

TEST_F(NetworkTest, DistinctPairsDoNotContend) {
  SimTime d1 = -1;
  SimTime d2 = -1;
  network_.Send(0, 1, 8192, [&]() { d1 = engine_.Now(); });
  network_.Send(2, 3, 8192, [&]() { d2 = engine_.Now(); });
  engine_.Run();
  // Both complete in the uncontended time (equal hops, equal size).
  EXPECT_EQ(d1, network_.UncontendedLatency(0, 1, 8192));
  EXPECT_EQ(d2, network_.UncontendedLatency(2, 3, 8192));
}

TEST_F(NetworkTest, StatsCountMessagesAndBytes) {
  network_.Send(0, 1, 100, []() {});
  network_.Send(1, 2, 200, []() {});
  engine_.Run();
  EXPECT_EQ(stats_.Get("mesh.messages"), 2);
  EXPECT_EQ(stats_.Get("mesh.bytes"), 300);
}

TEST_F(NetworkTest, FartherNodesTakeLonger) {
  EXPECT_GT(network_.UncontendedLatency(0, 15, 32), network_.UncontendedLatency(0, 1, 32));
}

TEST(NetworkDeathTest, LocalSendRejected) {
  Engine engine;
  StatsRegistry stats;
  Network network(engine, Topology(2, 2), MeshParams{}, &stats);
  EXPECT_DEATH(network.Send(1, 1, 32, []() {}), "local delivery");
}

}  // namespace
}  // namespace asvm
