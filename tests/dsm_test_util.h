// Shared helpers for DSM-level tests: a small cluster, per-node task memory,
// and synchronous read/write drivers that run the engine to completion.
#ifndef TESTS_DSM_TEST_UTIL_H_
#define TESTS_DSM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/dsm/cluster.h"
#include "src/dsm/dsm_system.h"
#include "src/machvm/task_memory.h"

namespace asvm {

// Shadow single-writer memory: the coherence oracle. Every committed write is
// replayed into a plain map; every completed read must return exactly what
// the map holds (sequential consistency for the one-op-at-a-time drivers the
// tests use). Any divergence is a coherency-protocol bug, regardless of which
// fault profile was active when it happened.
class CoherenceOracle {
 public:
  void RecordWrite(VmOffset addr, uint64_t value) { shadow_[addr] = value; }

  // Expected value of a read at `addr` (unwritten memory is zero-filled).
  uint64_t Expected(VmOffset addr) const {
    auto it = shadow_.find(addr);
    return it == shadow_.end() ? 0 : it->second;
  }

  void CheckRead(VmOffset addr, uint64_t actual) {
    const uint64_t expected = Expected(addr);
    EXPECT_EQ(actual, expected)
        << "coherence violation at addr " << addr << ": read " << actual
        << " but the last committed write was " << expected;
    if (actual != expected) {
      ++violations_;
    }
  }

  int violations() const { return violations_; }

 private:
  std::unordered_map<VmOffset, uint64_t> shadow_;
  int violations_ = 0;
};

// One task per node mapping the same distributed region at address 0.
class DsmRegionHarness {
 public:
  DsmRegionHarness(Cluster& cluster, DsmSystem& system, const MemObjectId& id, VmSize pages)
      : cluster_(cluster) {
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      auto repr = system.Attach(n, id);
      VmMap* map = cluster.vm(n).CreateMap();
      EXPECT_EQ(map->Map(0, pages, repr, 0, Inheritance::kShare), Status::kOk);
      memories_.push_back(std::make_unique<TaskMemory>(cluster.vm(n), *map));
    }
  }

  TaskMemory& mem(NodeId n) { return *memories_.at(n); }

  // Synchronous drivers: issue the access, run the engine until quiescent.
  uint64_t Read(NodeId n, VmOffset addr) {
    auto f = mem(n).ReadU64(addr);
    cluster_.engine().Run();
    EXPECT_TRUE(f.ready()) << "read did not complete (node " << n << ", addr " << addr << ")";
    return f.ready() ? f.value() : ~0ULL;
  }

  void Write(NodeId n, VmOffset addr, uint64_t value) {
    auto f = mem(n).WriteU64(addr, value);
    cluster_.engine().Run();
    ASSERT_TRUE(f.ready()) << "write did not complete (node " << n << ", addr " << addr << ")";
    ASSERT_EQ(f.value(), Status::kOk);
  }

  // Timed variant: returns the simulated duration of the access.
  SimDuration TimedWrite(NodeId n, VmOffset addr, uint64_t value) {
    const SimTime start = cluster_.engine().Now();
    auto f = mem(n).WriteU64(addr, value);
    // Run only until the access completes (background work may continue).
    while (!f.ready() && !cluster_.engine().empty()) {
      cluster_.engine().RunFor(10 * kMicrosecond);
    }
    EXPECT_TRUE(f.ready());
    const SimDuration elapsed = cluster_.engine().Now() - start;
    cluster_.engine().Run();  // drain background traffic
    return elapsed;
  }

  SimDuration TimedRead(NodeId n, VmOffset addr, uint64_t* out = nullptr) {
    const SimTime start = cluster_.engine().Now();
    auto f = mem(n).ReadU64(addr);
    while (!f.ready() && !cluster_.engine().empty()) {
      cluster_.engine().RunFor(10 * kMicrosecond);
    }
    EXPECT_TRUE(f.ready());
    if (out != nullptr && f.ready()) {
      *out = f.value();
    }
    const SimDuration elapsed = cluster_.engine().Now() - start;
    cluster_.engine().Run();
    return elapsed;
  }

 private:
  Cluster& cluster_;
  std::vector<std::unique_ptr<TaskMemory>> memories_;
};

inline ClusterParams SmallClusterParams(int nodes, size_t frames = 512) {
  ClusterParams params;
  params.node_count = nodes;
  params.vm.page_size = 4096;
  params.vm.frame_capacity = frames;
  return params;
}

}  // namespace asvm

#endif  // TESTS_DSM_TEST_UTIL_H_
