// ASVM forwarding internals: static-manager placement, hint-cache behaviour
// under tiny capacities (the §3.4 claim that static forwarding backs up
// dynamic because its cache is effectively distributed), stale-hint recovery,
// and escalation safety.
#include <gtest/gtest.h>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class ForwardingTest : public ::testing::Test {
 protected:
  void Build(int nodes, AsvmConfig config = {}) {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(nodes));
    system_ = std::make_unique<AsvmSystem>(*cluster_, config);
    region_ = system_->CreateSharedRegion(0, 64);
    harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, 64);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<AsvmSystem> system_;
  MemObjectId region_;
  std::unique_ptr<DsmRegionHarness> harness_;
};

TEST_F(ForwardingTest, StaticManagerDistributesPagesAcrossSharers) {
  Build(4);
  // Attach all four nodes (the harness did), then check the manager map.
  AsvmObjectInfo& info = system_->info(region_);
  ASSERT_EQ(info.sharing.size(), 4u);
  std::set<NodeId> managers;
  for (PageIndex p = 0; p < 8; ++p) {
    const NodeId mgr = system_->StaticManagerOf(info, p);
    EXPECT_TRUE(std::find(info.sharing.begin(), info.sharing.end(), mgr) !=
                info.sharing.end());
    managers.insert(mgr);
  }
  EXPECT_EQ(managers.size(), 4u) << "pages must spread across all sharers";
}

TEST_F(ForwardingTest, StaticManagerIsDeterministic) {
  Build(4);
  AsvmObjectInfo& info = system_->info(region_);
  for (PageIndex p = 0; p < 16; ++p) {
    EXPECT_EQ(system_->StaticManagerOf(info, p), system_->StaticManagerOf(info, p));
  }
}

TEST_F(ForwardingTest, TinyDynamicCacheStillCorrect) {
  // A 2-entry dynamic hint cache: hints constantly evicted; static forwarding
  // must absorb the misses (§3.4: "static will not fail as often as dynamic
  // since the static cache is in effect distributed").
  AsvmConfig config;
  config.dyn_cache_capacity = 2;
  Build(6, config);
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < 16; ++p) {
      harness_->Write(round % 6, static_cast<VmOffset>(p) * 4096,
                      static_cast<uint64_t>(round * 100 + p));
    }
  }
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(harness_->Read(5, static_cast<VmOffset>(p) * 4096),
              static_cast<uint64_t>(200 + p));
  }
}

TEST_F(ForwardingTest, TinyStaticCacheFallsBackToTerminal) {
  AsvmConfig config;
  config.static_cache_capacity = 1;
  config.dyn_cache_capacity = 1;
  Build(6, config);
  for (int p = 0; p < 24; ++p) {
    harness_->Write(1, static_cast<VmOffset>(p) * 4096, static_cast<uint64_t>(p) + 7);
  }
  for (int p = 0; p < 24; ++p) {
    EXPECT_EQ(harness_->Read(4, static_cast<VmOffset>(p) * 4096),
              static_cast<uint64_t>(p) + 7);
  }
}

TEST_F(ForwardingTest, StaleHintsRecoverAfterOwnershipChurn) {
  Build(8);
  // Create hints everywhere, then churn ownership so every hint goes stale.
  for (NodeId n = 0; n < 8; ++n) {
    harness_->Read(n, 0);
  }
  for (int round = 0; round < 10; ++round) {
    harness_->Write(round % 8, 0, static_cast<uint64_t>(round));
  }
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(harness_->Read(n, 0), 9u);
  }
  // Escalations may have occurred but never unbounded forwarding (the CHECK
  // in RouteRequest would have fired).
}

TEST_F(ForwardingTest, WriteAfterWritebackFindsPagerCopy) {
  // Force a writeback (no other node can take the page), then access from a
  // different node: the 'paged' path through the static manager/home.
  // Shrink frames so node 1 must write pages back. (Tear down in dependency
  // order: the system's agents reference the cluster's VMs.)
  harness_.reset();
  system_.reset();
  cluster_ = std::make_unique<Cluster>(SmallClusterParams(2, /*frames=*/8));
  system_ = std::make_unique<AsvmSystem>(*cluster_);
  region_ = system_->CreateSharedRegion(0, 64);
  harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, 64);
  for (int p = 0; p < 32; ++p) {
    harness_->Write(1, static_cast<VmOffset>(p) * 4096, 4000 + static_cast<uint64_t>(p));
  }
  EXPECT_GT(cluster_->stats().Get("asvm.evict_writebacks"), 0);
  for (int p = 0; p < 32; ++p) {
    EXPECT_EQ(harness_->Read(0, static_cast<VmOffset>(p) * 4096),
              4000 + static_cast<uint64_t>(p));
  }
}

TEST_F(ForwardingTest, ReaderListSurvivesOwnershipTransferViaEviction) {
  // Owner evicts while readers exist: step 2 hands the reader list over; the
  // new owner must still invalidate everyone on the next write.
  harness_.reset();
  system_.reset();
  cluster_ = std::make_unique<Cluster>(SmallClusterParams(4, /*frames=*/24));
  system_ = std::make_unique<AsvmSystem>(*cluster_);
  region_ = system_->CreateSharedRegion(0, 64);
  harness_ = std::make_unique<DsmRegionHarness>(*cluster_, *system_, region_, 64);

  harness_->Write(0, 0, 50);
  EXPECT_EQ(harness_->Read(1, 0), 50u);
  EXPECT_EQ(harness_->Read(2, 0), 50u);
  // Evict the page from node 0 by filling its memory.
  for (int p = 1; p < 30; ++p) {
    harness_->Write(0, static_cast<VmOffset>(p) * 4096, static_cast<uint64_t>(p));
  }
  // Whoever owns page 0 now, a write from node 3 must invalidate ALL copies.
  harness_->Write(3, 0, 51);
  EXPECT_EQ(harness_->Read(0, 0), 51u);
  EXPECT_EQ(harness_->Read(1, 0), 51u);
  EXPECT_EQ(harness_->Read(2, 0), 51u);
}

}  // namespace
}  // namespace asvm
