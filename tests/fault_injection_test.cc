// Fault injection end to end: the FaultPlan primitives, the hardened
// pending-op table (timeout + bounded retry + duplicate suppression), and the
// stall watchdog diagnosing an orphaned operation. Delay-only faults must
// never break coherence; message loss (node removal) must surface as a
// bounded kTimeout or, with retries disabled, a diagnosed stall — never as a
// silent hang or a wrong value.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/dsm/protocol_agent.h"
#include "src/mesh/fault_plan.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

// --- FaultPlan unit tests ----------------------------------------------------

TEST(FaultPlanTest, ProfileFactoryBuildsTheCannedPlans) {
  FaultPlanParams p;
  EXPECT_TRUE(FaultProfileFromName("none", 1, 8, &p));
  EXPECT_TRUE(p.Empty());

  EXPECT_TRUE(FaultProfileFromName("jitter", 1, 8, &p));
  EXPECT_EQ(p.max_jitter_ns, 150 * kMicrosecond);

  EXPECT_TRUE(FaultProfileFromName("slow-node", 1, 8, &p));
  ASSERT_EQ(p.slow_nodes.size(), 1u);
  EXPECT_EQ(p.slow_nodes[0].node, 4);
  EXPECT_EQ(p.slow_nodes[0].cost_factor, 8.0);

  EXPECT_TRUE(FaultProfileFromName("degraded-links", 1, 8, &p));
  ASSERT_EQ(p.degraded_links.size(), 2u);
  EXPECT_EQ(p.degraded_links[0].a, 0);
  EXPECT_EQ(p.degraded_links[0].b, kInvalidNode);

  EXPECT_FALSE(FaultProfileFromName("meteor-strike", 1, 8, &p));
}

TEST(FaultPlanTest, JitterIsSeededAndBounded) {
  FaultPlanParams params;
  params.seed = 5;
  params.max_jitter_ns = 150 * kMicrosecond;

  Engine engine;
  FaultPlan a(engine, params, 4, nullptr);
  FaultPlan b(engine, params, 4, nullptr);
  params.seed = 6;
  FaultPlan c(engine, params, 4, nullptr);

  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    const SimDuration draw = a.NextJitter();
    EXPECT_GE(draw, 0);
    EXPECT_LE(draw, 150 * kMicrosecond);
    EXPECT_EQ(draw, b.NextJitter());  // same seed, same stream
    diverged = diverged || draw != c.NextJitter();
  }
  EXPECT_TRUE(diverged);  // a different seed draws a different stream
}

TEST(FaultPlanTest, RemovalSeversTheNodeAtItsTime) {
  FaultPlanParams params;
  params.removals.push_back({2, 100});

  Engine engine;
  FaultPlan plan(engine, params, 4, nullptr);
  EXPECT_TRUE(plan.NodeAlive(2));
  EXPECT_TRUE(plan.Delivers(0, 2));

  engine.Schedule(100, []() {});
  engine.Run();
  EXPECT_FALSE(plan.NodeAlive(2));
  EXPECT_FALSE(plan.Delivers(0, 2));  // to the removed node
  EXPECT_FALSE(plan.Delivers(2, 0));  // and from it
  EXPECT_TRUE(plan.Delivers(0, 1));   // other links untouched
}

TEST(FaultPlanTest, LinkDegradationMatchesWildcardAndPairs) {
  FaultPlanParams params;
  params.degraded_links.push_back({0, kInvalidNode, 0.25});
  params.degraded_links.push_back({1, 3, 0.5});

  Engine engine;
  FaultPlan plan(engine, params, 4, nullptr);
  EXPECT_DOUBLE_EQ(plan.LinkBandwidthFactor(0, 3), 0.25);
  EXPECT_DOUBLE_EQ(plan.LinkBandwidthFactor(2, 0), 0.25);
  EXPECT_DOUBLE_EQ(plan.LinkBandwidthFactor(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(plan.LinkBandwidthFactor(3, 1), 0.5);
  EXPECT_DOUBLE_EQ(plan.LinkBandwidthFactor(1, 2), 1.0);
}

// --- Protocol hardening under live machines ---------------------------------

// A slowed reader delays its invalidation ack past the (deliberately tight)
// deadline: retries fire, their duplicates are suppressed, and the op still
// resolves kOk well before the retry budget runs out. Coherence holds.
TEST(FaultInjectionTest, RetriesFireButCoherenceHolds) {
  MachineConfig config;
  config.nodes = 4;
  config.dsm = DsmKind::kAsvm;
  config.fault.slow_nodes.push_back({2, 16.0});
  config.retry.timeout_ns = 300 * kMicrosecond;
  config.stall_watchdog = true;
  Machine machine(config);

  MemObjectId region = machine.CreateSharedRegion(0, 4);
  TaskMemory& writer = machine.MapRegion(1, region);
  TaskMemory& slow_reader = machine.MapRegion(2, region);
  TaskMemory& reader = machine.MapRegion(3, region);

  auto w1 = writer.WriteU64(0, 41);
  machine.Run();
  ASSERT_TRUE(w1.ready());
  ASSERT_EQ(w1.value(), Status::kOk);

  auto r1 = slow_reader.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r1.ready());
  EXPECT_EQ(r1.value(), 41u);

  // Upgrading the writer invalidates the slow reader; its ack arrives after
  // at least one deadline has fired.
  auto w2 = writer.WriteU64(0, 42);
  machine.Run();
  ASSERT_TRUE(w2.ready());
  ASSERT_EQ(w2.value(), Status::kOk);

  auto r2 = reader.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r2.ready());
  EXPECT_EQ(r2.value(), 42u);
  auto r3 = slow_reader.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r3.ready());
  EXPECT_EQ(r3.value(), 42u);

  EXPECT_GE(machine.stats().Get("dsm.op_retries"), 1);
  EXPECT_EQ(machine.stats().Get("dsm.op_timeouts"), 0);
  EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0) << machine.last_stall_report();
}

// A removed reader black-holes its invalidation. With retries armed the op
// exhausts its budget, resolves kNodeDown (the fault plan confirms every
// unanswered target removed — not a generic kTimeout), and the write still
// completes: a bounded, correctly attributed failure instead of a wedge.
TEST(FaultInjectionTest, RemovedNodeTimesOutInsteadOfWedging) {
  constexpr SimTime kRemovalTime = 50 * kMillisecond;
  MachineConfig config;
  config.nodes = 4;
  config.dsm = DsmKind::kAsvm;
  config.fault.removals.push_back({2, kRemovalTime});
  config.retry.timeout_ns = 300 * kMicrosecond;
  config.stall_watchdog = true;
  Machine machine(config);

  MemObjectId region = machine.CreateSharedRegion(0, 4);
  TaskMemory& writer = machine.MapRegion(1, region);
  TaskMemory& doomed = machine.MapRegion(2, region);

  auto w1 = writer.WriteU64(0, 7);
  machine.Run();
  ASSERT_TRUE(w1.ready());
  auto r1 = doomed.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r1.ready());
  EXPECT_EQ(r1.value(), 7u);
  ASSERT_LT(machine.Now(), kRemovalTime) << "setup overran the removal time";

  // Cross the removal time (a drained RunFor does not advance the clock, so
  // park an empty event past the boundary), then invalidate the dead reader.
  machine.engine().Schedule(kRemovalTime - machine.Now() + kMillisecond, []() {});
  machine.Run();
  ASSERT_GT(machine.Now(), kRemovalTime);
  auto w2 = writer.WriteU64(0, 8);
  machine.Run();
  ASSERT_TRUE(w2.ready()) << "write wedged on the removed reader";

  EXPECT_GE(machine.stats().Get("dsm.op_node_down"), 1);
  EXPECT_EQ(machine.stats().Get("dsm.op_timeouts"), 0)
      << "a confirmed-dead target must classify kNodeDown, not kTimeout";
  EXPECT_GE(machine.stats().Get("fault.messages_dropped"), 1);

  // The surviving nodes still agree on the new value.
  auto r2 = writer.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r2.ready());
  EXPECT_EQ(r2.value(), 8u);
}

// The XMM manager's flush of a removed writer must also classify kNodeDown:
// the fault plan confirms the flush target dead at the first deadline, the
// manager treats the writer as holding nothing, and the read completes served
// from the pager (the dirty contents died with the writer). No failover
// needed — classification is always on and timeline-neutral.
TEST(FaultInjectionTest, XmmFlushOfRemovedWriterResolvesNodeDown) {
  constexpr SimTime kRemovalTime = 50 * kMillisecond;
  MachineConfig config;
  config.nodes = 4;
  config.dsm = DsmKind::kXmm;
  config.fault.removals.push_back({2, kRemovalTime});
  config.retry.timeout_ns = 300 * kMicrosecond;
  config.stall_watchdog = true;
  Machine machine(config);

  MemObjectId region = machine.CreateSharedRegion(0, 4);
  TaskMemory& doomed_writer = machine.MapRegion(2, region);
  TaskMemory& reader = machine.MapRegion(3, region);

  auto w1 = doomed_writer.WriteU64(0, 7);
  machine.Run();
  ASSERT_TRUE(w1.ready());
  ASSERT_EQ(w1.value(), Status::kOk);
  ASSERT_LT(machine.Now(), kRemovalTime) << "setup overran the removal time";

  machine.engine().Schedule(kRemovalTime - machine.Now() + kMillisecond, []() {});
  machine.Run();
  ASSERT_GT(machine.Now(), kRemovalTime);

  auto r1 = reader.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r1.ready()) << "read wedged on the removed writer's flush";
  EXPECT_EQ(r1.value(), 0u) << "the dirty contents died with the writer";
  EXPECT_GE(machine.stats().Get("dsm.op_node_down"), 1);
  EXPECT_EQ(machine.stats().Get("dsm.op_timeouts"), 0);
  EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0) << machine.last_stall_report();
}

// The same black hole with retries disabled: the op can never resolve, the
// event queue drains, and the watchdog must diagnose the stall — naming the
// orphaned invalidation op rather than silently returning.
TEST(FaultInjectionTest, WatchdogDiagnosesAnOrphanedOp) {
  constexpr SimTime kRemovalTime = 50 * kMillisecond;
  MachineConfig config;
  config.nodes = 4;
  config.dsm = DsmKind::kAsvm;
  config.fault.removals.push_back({2, kRemovalTime});
  config.retry.timeout_ns = 0;  // hardening off: nothing rescues the op
  config.stall_watchdog = true;
  Machine machine(config);

  MemObjectId region = machine.CreateSharedRegion(0, 4);
  TaskMemory& writer = machine.MapRegion(1, region);
  TaskMemory& doomed = machine.MapRegion(2, region);

  auto w1 = writer.WriteU64(0, 7);
  machine.Run();
  auto r1 = doomed.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r1.ready());
  ASSERT_LT(machine.Now(), kRemovalTime);

  machine.engine().Schedule(kRemovalTime - machine.Now() + kMillisecond, []() {});
  machine.Run();
  ASSERT_GT(machine.Now(), kRemovalTime);
  auto w2 = writer.WriteU64(0, 8);
  machine.Run();

  EXPECT_FALSE(w2.ready());  // genuinely blocked — that's what stalled means
  EXPECT_GE(machine.stats().Get("sim.stalls_detected"), 1);
  const std::string& report = machine.last_stall_report();
  EXPECT_NE(report.find("simulation stalled"), std::string::npos) << report;
  EXPECT_NE(report.find("invalidate-round"), std::string::npos)
      << "stall report does not name the orphaned op:\n"
      << report;
  EXPECT_NE(report.find("node 1"), std::string::npos) << report;
}

// Delay-only profiles across both DSMs: a short contended workload completes
// with zero timeouts and zero stalls (faults slow the timeline, never break
// it). This is the cheap smoke version of the property-test regimes.
TEST(FaultInjectionTest, DelayOnlyProfilesNeverTimeOut) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    for (const char* profile : {"jitter", "slow-node", "degraded-links"}) {
      MachineConfig config;
      config.nodes = 4;
      config.dsm = kind;
      ASSERT_TRUE(FaultProfileFromName(profile, 9, config.nodes, &config.fault));
      config.retry.timeout_ns = 20 * kMillisecond;
      config.stall_watchdog = true;
      Machine machine(config);

      MemObjectId region = machine.CreateSharedRegion(0, 2);
      std::vector<TaskMemory*> mems;
      for (NodeId n = 0; n < 4; ++n) {
        mems.push_back(&machine.MapRegion(n, region));
      }
      for (int i = 0; i < 12; ++i) {
        const NodeId node = static_cast<NodeId>(i % 4);
        auto w = mems[node]->WriteU64(0, static_cast<uint64_t>(100 + i));
        machine.Run();
        ASSERT_TRUE(w.ready()) << ToString(kind) << "/" << profile << " op " << i;
        ASSERT_EQ(w.value(), Status::kOk);
      }
      uint64_t agreed = 111;  // the last write
      for (NodeId n = 0; n < 4; ++n) {
        auto r = mems[n]->ReadU64(0);
        machine.Run();
        ASSERT_TRUE(r.ready());
        EXPECT_EQ(r.value(), agreed) << ToString(kind) << "/" << profile << " node " << n;
      }
      EXPECT_EQ(machine.stats().Get("dsm.op_timeouts"), 0)
          << ToString(kind) << "/" << profile;
      EXPECT_EQ(machine.stats().Get("fault.messages_dropped"), 0)
          << ToString(kind) << "/" << profile;
      EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
          << ToString(kind) << "/" << profile << "\n"
          << machine.last_stall_report();
    }
  }
}

// Regression (PR 4): an aggressive backoff policy used to overflow the
// exponential delay computation — the double exceeded INT64_MAX, the cast
// produced a negative delay, and the scheduler CHECK-failed. The delay now
// saturates at RetryPolicy::max_delay_ns: the same black-hole scenario must
// resolve kTimeout within a bounded stretch of simulated time.
TEST(FaultInjectionTest, AggressiveBackoffSaturatesInsteadOfOverflowing) {
  constexpr SimTime kRemovalTime = 50 * kMillisecond;
  MachineConfig config;
  config.nodes = 4;
  config.dsm = DsmKind::kAsvm;
  config.fault.removals.push_back({2, kRemovalTime});
  config.retry.timeout_ns = 20 * kMillisecond;
  config.retry.max_retries = 12;
  config.retry.backoff = 8.0;  // unclamped, attempt 12 would wait 20ms * 8^12 ≈ 43 years
  config.stall_watchdog = true;
  Machine machine(config);

  MemObjectId region = machine.CreateSharedRegion(0, 4);
  TaskMemory& writer = machine.MapRegion(1, region);
  TaskMemory& doomed = machine.MapRegion(2, region);

  auto w1 = writer.WriteU64(0, 7);
  machine.Run();
  ASSERT_TRUE(w1.ready());
  auto r1 = doomed.ReadU64(0);
  machine.Run();
  ASSERT_TRUE(r1.ready());
  ASSERT_LT(machine.Now(), kRemovalTime);

  machine.engine().Schedule(kRemovalTime - machine.Now() + kMillisecond, []() {});
  machine.Run();
  auto w2 = writer.WriteU64(0, 8);
  machine.Run();

  ASSERT_TRUE(w2.ready()) << "write wedged instead of timing out";
  EXPECT_GE(machine.stats().Get("dsm.op_node_down"), 1);
  // Every per-attempt delay is capped at max_delay_ns (1 s default), so 12
  // retries finish within seconds of simulated time — not decades, and never
  // a negative-delay CHECK.
  EXPECT_LT(machine.Now(), 60 * kSecond);
  EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0) << machine.last_stall_report();
}

// Regression (PR 4): the duplicate-suppression window was a 512-entry FIFO
// bounded by count, so 512 interleaved ops evicted a live op id and a late
// retry duplicate would re-execute a non-idempotent request. Retention is now
// time-based (twice the worst-case retry horizon): op ids must survive any
// number of interleaved deliveries at the same simulated time, and must be
// forgotten once no retry can still be in flight.
TEST(FaultInjectionTest, DuplicateWindowSurvivesAFloodOfInterleavedOps) {
  MachineConfig config;
  config.nodes = 2;
  config.dsm = DsmKind::kAsvm;
  config.retry.timeout_ns = 20 * kMillisecond;  // arms delivered-op tracking
  Machine machine(config);

  struct TestAgent : ProtocolAgent {
    TestAgent(DsmSystem& dsm, NodeId node)
        : ProtocolAgent(dsm, node, TraceProtocol::kAsvm) {}
    using ProtocolAgent::DuplicateDelivery;
    void OnMessage(NodeId, Message) override {}
  };
  TestAgent agent(machine.dsm(), 0);

  EXPECT_FALSE(agent.DuplicateDelivery(1));  // first delivery
  EXPECT_TRUE(agent.DuplicateDelivery(1));   // retry duplicate, suppressed

  // Flood: far more than the old window size, all at the same sim time.
  for (uint64_t id = 2; id <= 1500; ++id) {
    EXPECT_FALSE(agent.DuplicateDelivery(id)) << "fresh id " << id << " misdetected";
  }
  EXPECT_TRUE(agent.DuplicateDelivery(1)) << "live op id evicted by the flood";
  EXPECT_TRUE(agent.DuplicateDelivery(777));

  // Past the retention horizon (2 * sum of all backoff delays; 600 ms for the
  // default policy at 20 ms) the ids are purged — memory stays bounded.
  machine.engine().Schedule(2 * kSecond, []() {});
  machine.Run();
  EXPECT_FALSE(agent.DuplicateDelivery(1));
  EXPECT_FALSE(agent.DuplicateDelivery(777));
}

}  // namespace
}  // namespace asvm
