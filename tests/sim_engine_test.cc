#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace asvm {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.Now(), 0);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, RunAdvancesTimeToEventTimestamps) {
  Engine engine;
  std::vector<SimTime> observed;
  engine.Schedule(10, [&]() { observed.push_back(engine.Now()); });
  engine.Schedule(5, [&]() { observed.push_back(engine.Now()); });
  engine.Run();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], 5);
  EXPECT_EQ(observed[1], 10);
  EXPECT_EQ(engine.Now(), 10);
}

TEST(EngineTest, EqualTimesFireInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.Schedule(7, [&order, i]() { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EngineTest, EventsMayScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 5) {
      engine.Schedule(kMicrosecond, chain);
    }
  };
  engine.Schedule(0, chain);
  uint64_t count = engine.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(engine.Now(), 4 * kMicrosecond);
}

TEST(EngineTest, PostRunsAtCurrentTime) {
  Engine engine;
  SimTime post_time = -1;
  engine.Schedule(42, [&]() {
    engine.Post([&]() { post_time = engine.Now(); });
  });
  engine.Run();
  EXPECT_EQ(post_time, 42);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  engine.Schedule(10, [&]() { ++fired; });
  engine.Schedule(20, [&]() { ++fired; });
  engine.Schedule(30, [&]() { ++fired; });
  bool drained = engine.RunUntil(20);
  EXPECT_FALSE(drained);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline run
  EXPECT_EQ(engine.Now(), 20);
  EXPECT_TRUE(engine.RunUntil(100));
  EXPECT_EQ(fired, 3);
}

TEST(EngineTest, RunForIsRelative) {
  Engine engine;
  int fired = 0;
  engine.Schedule(10, [&]() { ++fired; });
  engine.RunFor(5);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(engine.Now(), 5);
  engine.RunFor(5);
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, ExecutedEventsCounts) {
  Engine engine;
  for (int i = 0; i < 17; ++i) {
    engine.Schedule(i, []() {});
  }
  engine.Run();
  EXPECT_EQ(engine.executed_events(), 17u);
}

TEST(EngineDeathTest, NegativeDelayAborts) {
  Engine engine;
  EXPECT_DEATH(engine.Schedule(-1, []() {}), "negative delay");
}

TEST(EngineDeathTest, EventLimitCatchesLivelock) {
  Engine engine;
  engine.set_event_limit(100);
  std::function<void()> spin = [&]() { engine.Post(spin); };
  engine.Post(spin);
  EXPECT_DEATH(engine.Run(), "event limit");
}

}  // namespace
}  // namespace asvm
