#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace asvm {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.Now(), 0);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, RunAdvancesTimeToEventTimestamps) {
  Engine engine;
  std::vector<SimTime> observed;
  engine.Schedule(10, [&]() { observed.push_back(engine.Now()); });
  engine.Schedule(5, [&]() { observed.push_back(engine.Now()); });
  engine.Run();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], 5);
  EXPECT_EQ(observed[1], 10);
  EXPECT_EQ(engine.Now(), 10);
}

TEST(EngineTest, EqualTimesFireInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.Schedule(7, [&order, i]() { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EngineTest, EventsMayScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 5) {
      engine.Schedule(kMicrosecond, chain);
    }
  };
  engine.Schedule(0, chain);
  uint64_t count = engine.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(engine.Now(), 4 * kMicrosecond);
}

TEST(EngineTest, PostRunsAtCurrentTime) {
  Engine engine;
  SimTime post_time = -1;
  engine.Schedule(42, [&]() {
    engine.Post([&]() { post_time = engine.Now(); });
  });
  engine.Run();
  EXPECT_EQ(post_time, 42);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  engine.Schedule(10, [&]() { ++fired; });
  engine.Schedule(20, [&]() { ++fired; });
  engine.Schedule(30, [&]() { ++fired; });
  bool drained = engine.RunUntil(20);
  EXPECT_FALSE(drained);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline run
  EXPECT_EQ(engine.Now(), 20);
  EXPECT_TRUE(engine.RunUntil(100));
  EXPECT_EQ(fired, 3);
}

TEST(EngineTest, RunForIsRelative) {
  Engine engine;
  int fired = 0;
  engine.Schedule(10, [&]() { ++fired; });
  engine.RunFor(5);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(engine.Now(), 5);
  engine.RunFor(5);
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, ExecutedEventsCounts) {
  Engine engine;
  for (int i = 0; i < 17; ++i) {
    engine.Schedule(i, []() {});
  }
  engine.Run();
  EXPECT_EQ(engine.executed_events(), 17u);
}

TEST(EngineStallTest, SilentWhenNoProbeReportsBlockedWork) {
  Engine engine;
  std::string stall;
  engine.SetStallHandler([&](const std::string& report) { stall = report; });
  engine.AddStallProbe([](std::string&) { return false; });
  engine.Schedule(10, []() {});
  engine.Run();
  EXPECT_TRUE(stall.empty());
  EXPECT_EQ(engine.stalls_detected(), 0u);
}

TEST(EngineStallTest, FiresWhenQueueDrainsWithBlockedWork) {
  Engine engine;
  // Model an orphaned pending op: a reply that will never be scheduled. The
  // probe is the agent-side registry that still holds the entry.
  bool op_resolved = false;
  engine.AddStallProbe([&](std::string& report) {
    if (op_resolved) {
      return false;
    }
    report += "  asvm node 3: pending op 17 (invalidate-round) awaiting 1 reply\n";
    return true;
  });
  std::string stall;
  engine.SetStallHandler([&](const std::string& report) { stall = report; });
  engine.Schedule(5 * kMicrosecond, []() {});  // unrelated traffic; then silence
  engine.Run();
  EXPECT_EQ(engine.stalls_detected(), 1u);
  // The report names the culprit and the stall time.
  EXPECT_NE(stall.find("simulation stalled at t=5000 ns"), std::string::npos) << stall;
  EXPECT_NE(stall.find("pending op 17 (invalidate-round)"), std::string::npos) << stall;

  // Once the op resolves, further drains are clean.
  op_resolved = true;
  stall.clear();
  engine.Schedule(kMicrosecond, []() {});
  engine.Run();
  EXPECT_TRUE(stall.empty());
  EXPECT_EQ(engine.stalls_detected(), 1u);
}

TEST(EngineStallTest, RemovedProbeNoLongerFires) {
  Engine engine;
  std::string stall;
  engine.SetStallHandler([&](const std::string& report) { stall = report; });
  const int id = engine.AddStallProbe([](std::string& report) {
    report += "  blocked\n";
    return true;
  });
  engine.RemoveStallProbe(id);
  engine.Schedule(1, []() {});
  engine.Run();
  EXPECT_TRUE(stall.empty());
}

TEST(EngineStallTest, NoHandlerMeansNoChecks) {
  Engine engine;
  int probed = 0;
  engine.AddStallProbe([&](std::string&) {
    ++probed;
    return true;
  });
  engine.Schedule(1, []() {});
  engine.Run();
  EXPECT_EQ(probed, 0);  // probes only run when a handler wants the report
  EXPECT_EQ(engine.stalls_detected(), 0u);
}

TEST(EngineDeathTest, NegativeDelayAborts) {
  Engine engine;
  EXPECT_DEATH(engine.Schedule(-1, []() {}), "negative delay");
}

TEST(EngineDeathTest, ScheduleAtRejectsThePast) {
  Engine engine;
  engine.Schedule(100, []() {});
  engine.Run();
  ASSERT_EQ(engine.Now(), 100);
  EXPECT_DEATH(engine.ScheduleAt(99, []() {}), "ScheduleAt in the past");
}

TEST(EngineTest, ScheduleAtFiresAtAbsoluteTime) {
  Engine engine;
  std::vector<int> order;
  engine.ScheduleAt(50, [&]() { order.push_back(1); });
  engine.ScheduleAt(50, [&]() { order.push_back(2); });  // equal-time tie: FIFO
  engine.ScheduleAt(10, [&]() { order.push_back(0); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(engine.Now(), 50);
}

// Regression: RunFor used to compute now_ + duration unchecked, so a huge
// duration wrapped the deadline negative and RunFor returned without running
// anything. It must saturate to the end of time instead.
TEST(EngineTest, RunForSaturatesInsteadOfOverflowing) {
  Engine engine;
  int fired = 0;
  engine.Schedule(5, [&]() { ++fired; });
  engine.Run();
  ASSERT_EQ(engine.Now(), 5);  // now_ > 0 so now_ + max overflows if unchecked
  engine.Schedule(7, [&]() { ++fired; });
  EXPECT_TRUE(engine.RunFor(std::numeric_limits<SimDuration>::max()));
  EXPECT_EQ(fired, 2);
}

TEST(EngineDeathTest, RunForRejectsNegativeDurations) {
  Engine engine;
  EXPECT_DEATH(engine.RunFor(-1), "negative RunFor duration");
}

// Regression: the wheel's zero-delay ring starts at capacity zero; the very
// first Post therefore grows it, and the pre-guard index ring_.size() - 1
// underflowed. The first event through the fast lane must simply fire.
TEST(EngineTest, FirstEverEventMayTakeTheZeroDelayLane) {
  for (SchedulerKind kind : {SchedulerKind::kTimerWheel, SchedulerKind::kReference}) {
    Engine engine(kind);
    int fired = 0;
    engine.Post([&]() { ++fired; });
    engine.Run();
    EXPECT_EQ(fired, 1) << ToString(kind);
  }
}

// Regression companion: growing the ring while entries are queued must keep
// their (time, seq) firing order — a burst posted from inside an event forces
// several doublings with live entries in the ring.
TEST(EngineTest, RingGrowthPreservesSchedulingOrder) {
  for (SchedulerKind kind : {SchedulerKind::kTimerWheel, SchedulerKind::kReference}) {
    Engine engine(kind);
    std::vector<int> order;
    engine.Post([&]() {
      for (int i = 0; i < 100; ++i) {
        engine.Post([&order, i]() { order.push_back(i); });
      }
    });
    engine.Run();
    ASSERT_EQ(order.size(), 100u) << ToString(kind);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(order[i], i) << ToString(kind);
    }
  }
}

TEST(EngineDeathTest, EventLimitCatchesLivelock) {
  Engine engine;
  engine.set_event_limit(100);
  std::function<void()> spin = [&]() { engine.Post(spin); };
  engine.Post(spin);
  EXPECT_DEATH(engine.Run(), "event limit");
}

// Regression: MakeScheduler used to silently hand back the timer wheel for
// any unknown kind (and ToString returned "unknown"), so a corrupted or
// miscast configuration ran on the wrong event core without a word. Both must
// hard-fail: the scheduler choice is part of the deterministic-timeline
// contract.
TEST(SchedulerKindDeathTest, MakeSchedulerRejectsUnknownKinds) {
  EXPECT_DEATH(MakeScheduler(static_cast<SchedulerKind>(99)), "invalid SchedulerKind");
}

TEST(SchedulerKindDeathTest, ToStringRejectsUnknownKinds) {
  EXPECT_DEATH(ToString(static_cast<SchedulerKind>(99)), "invalid SchedulerKind");
}

TEST(SchedulerKindTest, FromNameParsesEveryAlias) {
  SchedulerKind kind = SchedulerKind::kReference;
  EXPECT_TRUE(SchedulerKindFromName("wheel", &kind));
  EXPECT_EQ(kind, SchedulerKind::kTimerWheel);
  EXPECT_TRUE(SchedulerKindFromName("timer-wheel", &kind));
  EXPECT_EQ(kind, SchedulerKind::kTimerWheel);
  EXPECT_TRUE(SchedulerKindFromName("heap", &kind));
  EXPECT_EQ(kind, SchedulerKind::kReference);
  EXPECT_TRUE(SchedulerKindFromName("reference", &kind));
  EXPECT_EQ(kind, SchedulerKind::kReference);
}

TEST(SchedulerKindTest, FromNameRejectsUnknownNamesWithoutWriting) {
  SchedulerKind kind = SchedulerKind::kReference;
  EXPECT_FALSE(SchedulerKindFromName("quantum", &kind));
  EXPECT_EQ(kind, SchedulerKind::kReference);  // *out untouched on failure
}

}  // namespace
}  // namespace asvm
