// TaskMemory: typed and bulk accessors, page-spanning transfers, fast paths.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/machvm/node_vm.h"
#include "src/machvm/task_memory.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

class TaskMemoryTest : public ::testing::Test {
 protected:
  TaskMemoryTest()
      : vm_(engine_, 0, VmParams{.page_size = 4096, .frame_capacity = 128, .costs = {}}, &stats_) {
    map_ = vm_.CreateMap();
    object_ = vm_.CreateObject(16);
    EXPECT_EQ(map_->Map(0, 16, object_, 0, Inheritance::kCopy), Status::kOk);
    mem_ = std::make_unique<TaskMemory>(vm_, *map_);
  }

  Engine engine_;
  StatsRegistry stats_;
  NodeVm vm_;
  VmMap* map_ = nullptr;
  std::shared_ptr<VmObject> object_;
  std::unique_ptr<TaskMemory> mem_;
};

TEST_F(TaskMemoryTest, WriteThenReadU64) {
  auto w = mem_->WriteU64(128, 0xDEADBEEFCAFEF00DULL);
  engine_.Run();
  ASSERT_TRUE(w.ready());
  auto r = mem_->ReadU64(128);
  engine_.Run();
  ASSERT_TRUE(r.ready());
  EXPECT_EQ(r.value(), 0xDEADBEEFCAFEF00DULL);
}

TEST_F(TaskMemoryTest, ReadOfUntouchedMemoryIsZero) {
  auto r = mem_->ReadU64(4096 * 5);
  engine_.Run();
  ASSERT_TRUE(r.ready());
  EXPECT_EQ(r.value(), 0u);
}

TEST_F(TaskMemoryTest, SecondAccessTakesFastPath) {
  auto w = mem_->WriteU64(0, 1);
  engine_.Run();
  const int64_t faults = stats_.Get("vm.faults");
  uint64_t v = 0;
  EXPECT_TRUE(mem_->TryReadU64(0, &v));
  EXPECT_TRUE(mem_->TryWriteU64(8, 2));
  EXPECT_EQ(stats_.Get("vm.faults"), faults);
}

TEST_F(TaskMemoryTest, BulkWriteSpansPages) {
  std::vector<std::byte> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  auto w = mem_->WriteBytes(1000, data);
  engine_.Run();
  ASSERT_TRUE(w.ready());
  ASSERT_EQ(w.value(), Status::kOk);

  std::vector<std::byte> back(10000);
  auto r = mem_->ReadBytes(1000, back);
  engine_.Run();
  ASSERT_TRUE(r.ready());
  ASSERT_EQ(r.value(), Status::kOk);
  EXPECT_EQ(back, data);
}

TEST_F(TaskMemoryTest, TouchMakesRangeAccessible) {
  auto t = mem_->Touch(4096 * 2, 4096 * 3, PageAccess::kWrite);
  engine_.Run();
  ASSERT_TRUE(t.ready());
  EXPECT_EQ(t.value(), Status::kOk);
  for (VmOffset page = 2; page < 5; ++page) {
    EXPECT_TRUE(mem_->TryWriteU64(page * 4096, page));
  }
}

TEST_F(TaskMemoryTest, TouchZeroLengthIsOk) {
  auto t = mem_->Touch(0, 0, PageAccess::kRead);
  EXPECT_TRUE(t.ready());
  EXPECT_EQ(t.value(), Status::kOk);
}

TEST_F(TaskMemoryTest, WriteBytesIntoUnmappedRangeFails) {
  std::vector<std::byte> data(64);
  auto w = mem_->WriteBytes(4096 * 20, data);  // beyond mapping
  engine_.Run();
  ASSERT_TRUE(w.ready());
  EXPECT_EQ(w.value(), Status::kInvalidArgument);
}

TEST_F(TaskMemoryTest, FaultsAreCountedPerPage) {
  std::vector<std::byte> data(4096 * 4);
  auto w = mem_->WriteBytes(0, data);
  engine_.Run();
  EXPECT_EQ(stats_.Get("vm.faults"), 4);
}

}  // namespace
}  // namespace asvm
