// Manager failover and online recovery end to end (DESIGN.md §14). The
// kill-manager profile removes node 0 — the ASVM forwarding terminal and the
// XMM centralized manager of the test region — mid-run. With failover enabled
// the surviving nodes must keep the region available and coherent:
//  - pre-kill writes survive promotion (owners re-assert, the backup's shadow
//    store resurrects written-back pages whose only copy died with the home);
//  - the whole recovery timeline is deterministic — byte-identical digests
//    across re-runs and across shard counts {1, 4};
//  - a dead owner's pages come back via the lease state machine, never by
//    guessing while the owner might still answer;
//  - rolling-restart brings the removed node back with cold caches and the
//    machine keeps serving both sides.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/dsm/failover.h"
#include "src/mesh/fault_plan.h"

#include "dsm_test_util.h"

namespace asvm {
namespace {

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t SyncRead(Machine& machine, TaskMemory& mem, VmOffset addr) {
  auto f = mem.ReadU64(addr);
  machine.Run();
  EXPECT_TRUE(f.ready()) << "read wedged at addr " << addr;
  return f.ready() ? f.value() : ~0ULL;
}

void SyncWrite(Machine& machine, TaskMemory& mem, VmOffset addr, uint64_t value) {
  auto f = mem.WriteU64(addr, value);
  machine.Run();
  ASSERT_TRUE(f.ready()) << "write wedged at addr " << addr;
  ASSERT_EQ(f.value(), Status::kOk);
}

// Parks an empty event past `when` so the drained engine crosses the fault
// plan's removal/restore boundary.
void AdvancePast(Machine& machine, SimTime when) {
  if (machine.Now() <= when) {
    machine.engine().Schedule(when - machine.Now() + kMillisecond, []() {});
    machine.Run();
  }
  ASSERT_GT(machine.Now(), when);
}

// Sliced variants for fault plans that park far-future events (the rolling
// restart wake at 400 ms lives in the queue from construction): a full drain
// would fast-forward the whole run past the rejoin before the first phase, so
// these advance in 1 ms slices only until the access resolves.
uint64_t SlicedRead(Machine& machine, TaskMemory& mem, VmOffset addr) {
  auto f = mem.ReadU64(addr);
  for (int i = 0; i < 4000 && !f.ready(); ++i) {
    machine.RunFor(kMillisecond);
  }
  EXPECT_TRUE(f.ready()) << "read wedged at addr " << addr;
  return f.ready() ? f.value() : ~0ULL;
}

void SlicedWrite(Machine& machine, TaskMemory& mem, VmOffset addr, uint64_t value) {
  auto f = mem.WriteU64(addr, value);
  for (int i = 0; i < 4000 && !f.ready(); ++i) {
    machine.RunFor(kMillisecond);
  }
  ASSERT_TRUE(f.ready()) << "write wedged at addr " << addr;
  ASSERT_EQ(f.value(), Status::kOk);
}

void AdvanceTo(Machine& machine, SimTime when) {
  // Park a wake just past the target: RunFor only advances the clock while
  // the queue holds events, so an empty queue would otherwise spin forever.
  machine.engine().Schedule(when + kMillisecond - machine.Now(), []() {});
  while (machine.Now() <= when) {
    machine.RunFor(kMillisecond);
  }
}

struct FailoverRun {
  uint64_t digest = 0;
  int violations = 0;
};

// The kill-manager workload: an 8-node machine, a region homed on node 0,
// pre-kill writes from the seven survivors (pages 6 and 7 stay untouched so
// post-kill first-touch must reach the promoted terminal), then node 0 dies
// and the survivors read everything back and keep writing.
FailoverRun KillManagerRun(DsmKind kind, int shards) {
  MachineConfig config;
  config.nodes = 8;
  config.dsm = kind;
  config.shards = shards;
  config.nodes_per_io_group = 2;  // 4 shard blocks: shards up to 4 are real
  EXPECT_TRUE(FaultProfileFromName("kill-manager", 1, config.nodes, &config.fault));
  config.retry.timeout_ns = 2 * kMillisecond;
  config.failover.enabled = true;
  config.stall_watchdog = true;
  Machine machine(config);
  CoherenceOracle oracle;

  constexpr VmSize kPages = 8;
  constexpr VmSize kWritten = 6;
  MemObjectId region = machine.CreateSharedRegion(0, kPages);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 8; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }

  // Healthy phase: survivors write, cross-node reads spread copies around.
  for (VmSize p = 0; p < kWritten; ++p) {
    const NodeId writer = static_cast<NodeId>(1 + p % 7);
    const VmOffset addr = p * machine.page_size();
    SyncWrite(machine, *mems[writer], addr, 1000 + p);
    oracle.RecordWrite(addr, 1000 + p);
    const NodeId reader = static_cast<NodeId>(1 + (p + 3) % 7);
    oracle.CheckRead(addr, SyncRead(machine, *mems[reader], addr));
  }
  EXPECT_LT(machine.Now(), 200 * kMillisecond) << "setup overran the kill time";

  AdvancePast(machine, 200 * kMillisecond);

  // Post-kill: every page — written ones (their owners survived) and untouched
  // ones (first-touch must promote the dead terminal before zero-filling).
  uint64_t digest = 14695981039346656037ULL;
  for (VmSize p = 0; p < kPages; ++p) {
    const NodeId reader = static_cast<NodeId>(1 + (p + 5) % 7);
    const VmOffset addr = p * machine.page_size();
    const uint64_t got = SyncRead(machine, *mems[reader], addr);
    oracle.CheckRead(addr, got);
    digest = Fnv1a(digest, got);
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }
  // The region stays writable after failover.
  for (VmSize p = 0; p < kPages; ++p) {
    const NodeId writer = static_cast<NodeId>(1 + (p + 2) % 7);
    const VmOffset addr = p * machine.page_size();
    SyncWrite(machine, *mems[writer], addr, 2000 + p);
    oracle.RecordWrite(addr, 2000 + p);
    const NodeId reader = static_cast<NodeId>(1 + (p + 4) % 7);
    const uint64_t got = SyncRead(machine, *mems[reader], addr);
    oracle.CheckRead(addr, got);
    digest = Fnv1a(digest, got);
  }

  EXPECT_GE(machine.stats().Get(kStatPromotions), 1) << ToString(kind);
  EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
      << ToString(kind) << "\n" << machine.last_stall_report();
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get(kStatPromotions)));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get(kStatReissues)));
  return {digest, oracle.violations()};
}

TEST(FailoverTest, KillManagerKeepsBothDsmsCoherent) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    FailoverRun run = KillManagerRun(kind, 1);
    EXPECT_EQ(run.violations, 0) << ToString(kind);
  }
}

TEST(FailoverTest, KillManagerRecoveryIsByteIdenticalAcrossRunsAndShards) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    const FailoverRun first = KillManagerRun(kind, 1);
    EXPECT_EQ(KillManagerRun(kind, 1).digest, first.digest)
        << ToString(kind) << ": re-run diverged";
    EXPECT_EQ(KillManagerRun(kind, 2).digest, first.digest)
        << ToString(kind) << ": 2-sharded recovery diverged";
    EXPECT_EQ(KillManagerRun(kind, 4).digest, first.digest)
        << ToString(kind) << ": 4-sharded recovery diverged";
  }
}

// The cascade workload: node 0 (the home/manager) dies at 200 ms, and node 1 —
// the freshly promoted backup — dies at 260 ms. The ring rule must re-run,
// the epoch-stamped directory fences the first ex-manager, and the data
// survives both promotions (owners re-assert; the re-mirror pass after the
// first promotion restocked node 2's shadow store before node 1 died).
FailoverRun CascadeRun(DsmKind kind, int shards) {
  MachineConfig config;
  config.nodes = 8;
  config.dsm = kind;
  config.shards = shards;
  config.nodes_per_io_group = 2;  // 4 shard blocks: shards up to 4 are real
  EXPECT_TRUE(FaultProfileFromName("cascade", 1, config.nodes, &config.fault));
  config.retry.timeout_ns = 2 * kMillisecond;
  config.failover.enabled = true;
  config.stall_watchdog = true;
  Machine machine(config);
  CoherenceOracle oracle;

  constexpr VmSize kPages = 8;
  MemObjectId region = machine.CreateSharedRegion(0, kPages);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 8; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }

  // Healthy phase: writers on the six nodes that survive both kills.
  for (VmSize p = 0; p < 6; ++p) {
    const NodeId writer = static_cast<NodeId>(2 + p % 6);
    const VmOffset addr = p * machine.page_size();
    SyncWrite(machine, *mems[writer], addr, 1000 + p);
    oracle.RecordWrite(addr, 1000 + p);
    const NodeId reader = static_cast<NodeId>(2 + (p + 3) % 6);
    oracle.CheckRead(addr, SyncRead(machine, *mems[reader], addr));
  }
  EXPECT_LT(machine.Now(), 200 * kMillisecond) << "setup overran the first kill";

  // First death: node 0. The next accesses detect it and promote node 1.
  AdvancePast(machine, 200 * kMillisecond);
  uint64_t digest = 14695981039346656037ULL;
  for (VmSize p = 0; p < kPages; ++p) {
    const NodeId reader = static_cast<NodeId>(2 + (p + 5) % 6);
    const VmOffset addr = p * machine.page_size();
    const uint64_t got = SyncRead(machine, *mems[reader], addr);
    oracle.CheckRead(addr, got);
    digest = Fnv1a(digest, got);
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }

  // Second death: node 1, the node the first failover just promoted. The ring
  // rule must re-run and land on node 2.
  AdvancePast(machine, 260 * kMillisecond);
  for (VmSize p = 0; p < kPages; ++p) {
    const NodeId writer = static_cast<NodeId>(2 + (p + 2) % 6);
    const VmOffset addr = p * machine.page_size();
    SyncWrite(machine, *mems[writer], addr, 2000 + p);
    oracle.RecordWrite(addr, 2000 + p);
    const NodeId reader = static_cast<NodeId>(2 + (p + 4) % 6);
    const uint64_t got = SyncRead(machine, *mems[reader], addr);
    oracle.CheckRead(addr, got);
    digest = Fnv1a(digest, got);
  }

  EXPECT_GE(machine.stats().Get(kStatPromotions), 2)
      << ToString(kind) << ": the cascaded death must re-run the ring rule";
  EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
      << ToString(kind) << "\n" << machine.last_stall_report();
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get(kStatPromotions)));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get(kStatDeathNotices)));
  return {digest, oracle.violations()};
}

TEST(FailoverTest, CascadeKillsThePromotedBackupAndRecoversAgain) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    FailoverRun run = CascadeRun(kind, 1);
    EXPECT_EQ(run.violations, 0) << ToString(kind);
  }
}

TEST(FailoverTest, CascadeRecoveryIsByteIdenticalAcrossShards) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    const FailoverRun first = CascadeRun(kind, 1);
    EXPECT_EQ(CascadeRun(kind, 2).digest, first.digest)
        << ToString(kind) << ": 2-sharded cascade diverged";
    EXPECT_EQ(CascadeRun(kind, 4).digest, first.digest)
        << ToString(kind) << ": 4-sharded cascade diverged";
  }
}

// Two simultaneous deaths (the kill-many profile removes nodes 0 and 2 at the
// same instant): the manager dies together with a bystander that only held
// read copies. Survivors must promote past the dead manager, drop the dead
// reader from every invalidation round, and keep the region coherent.
TEST(FailoverTest, KillManyRemovesManagerAndBystanderTogether) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 6;
    config.dsm = kind;
    EXPECT_TRUE(FaultProfileFromName("kill-many", 1, config.nodes, &config.fault));
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
    Machine machine(config);
    CoherenceOracle oracle;

    constexpr VmSize kPages = 6;
    MemObjectId region = machine.CreateSharedRegion(0, kPages);
    std::vector<TaskMemory*> mems;
    for (NodeId n = 0; n < 6; ++n) {
      mems.push_back(&machine.MapRegion(n, region));
    }

    // Healthy phase: the surviving nodes {1, 3, 4, 5} write; the doomed
    // bystander (node 2) reads everything, so its copies die with it.
    const NodeId survivors[] = {1, 3, 4, 5};
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      SyncWrite(machine, *mems[survivors[p % 4]], addr, 4000 + p);
      oracle.RecordWrite(addr, 4000 + p);
      oracle.CheckRead(addr, SyncRead(machine, *mems[2], addr));
    }
    ASSERT_LT(machine.Now(), 200 * kMillisecond) << "setup overran the kill time";

    AdvancePast(machine, 200 * kMillisecond);

    // Survivors read everything back and overwrite it: reads recover through
    // the promotion, writes must not wedge on the dead reader's silence.
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      oracle.CheckRead(addr, SyncRead(machine, *mems[survivors[(p + 1) % 4]], addr));
      SyncWrite(machine, *mems[survivors[(p + 2) % 4]], addr, 5000 + p);
      oracle.RecordWrite(addr, 5000 + p);
      oracle.CheckRead(addr, SyncRead(machine, *mems[survivors[(p + 3) % 4]], addr));
    }

    EXPECT_EQ(oracle.violations(), 0) << ToString(kind);
    EXPECT_GE(machine.stats().Get(kStatPromotions), 1) << ToString(kind);
    EXPECT_GE(machine.stats().Get(kStatDeathNotices), 1)
        << ToString(kind) << ": two confirmed deaths, no gossip";
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();
  }
}

// Owner death with a surviving read copy: the dead owner's committed page must
// be reconstructed from the newest surviving copy, not zero-filled. (Contrast
// with LeaseExpiryReclaimsADeadOwnersPages above, where no copy survives and
// the un-written-back write is legitimately lost.)
TEST(FailoverTest, OwnerDeathReconstructsFromSurvivingReadCopy) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    config.fault.removals.push_back({0, 200 * kMillisecond});
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.failover.lease_ns = 50 * kMillisecond;
    config.stall_watchdog = true;
    Machine machine(config);

    MemObjectId region = machine.CreateSharedRegion(1, 2);
    TaskMemory& doomed = machine.MapRegion(0, region);
    TaskMemory& holder = machine.MapRegion(2, region);
    TaskMemory& prober = machine.MapRegion(3, region);

    SyncWrite(machine, doomed, 0, 42);          // node 0 owns the committed page
    EXPECT_EQ(SyncRead(machine, holder, 0), 42u);  // node 2 holds a read copy
    ASSERT_LT(machine.Now(), 200 * kMillisecond);

    // Past removal AND past lease expiry (200 ms + 50 ms).
    AdvancePast(machine, 260 * kMillisecond);

    // The committed value must survive the owner: served from node 2's copy
    // (ASVM harvests it during the lease reclaim; XMM's manager already holds
    // the coherent version it created when it flushed the writer for node 2).
    EXPECT_EQ(SyncRead(machine, prober, 0), 42u)
        << ToString(kind) << ": committed page zero-filled despite a survivor";
    if (kind == DsmKind::kAsvm) {
      EXPECT_GE(machine.stats().Get(kStatLeaseReclaims), 1) << ToString(kind);
      EXPECT_GE(machine.stats().Get(kStatReconstructedPages), 1) << ToString(kind);
    }
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();

    // The reconstructed page is a normal page again: writable and coherent.
    SyncWrite(machine, prober, 0, 43);
    EXPECT_EQ(SyncRead(machine, holder, 0), 43u) << ToString(kind);
  }
}

// Committed-and-lost: written-back pages whose home, shadow backup, and writer
// all die must answer Status::kDataLost — never zeros — because the surviving
// manifest witness proves a commit happened. (ReadU64 CHECK-crashes on a
// failed fault by design, so the probe uses the WriteU64 status future.)
TEST(FailoverTest, LosingEveryReplicaOfACommittedPageFailsWithDataLost) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    config.user_memory_bytes = 40 * 8192;  // 40 frames: 64 pages must evict
    // Node 0 is the home/manager (and holds the paging-space copies); node 1
    // is both the evicting writer and node 0's ring-successor shadow backup.
    // Killing both at once strands every replica; only node 2's control-only
    // manifests survive.
    config.fault.removals.push_back({0, 1 * kSecond});
    config.fault.removals.push_back({1, 1 * kSecond});
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
    Machine machine(config);

    constexpr VmSize kPages = 64;
    MemObjectId region = machine.CreateSharedRegion(0, kPages);
    TaskMemory& writer = machine.MapRegion(1, region);
    TaskMemory& survivor = machine.MapRegion(2, region);

    for (VmSize p = 0; p < kPages; ++p) {
      SyncWrite(machine, writer, p * machine.page_size(), 7000 + p);
    }
    ASSERT_LT(machine.Now(), 1 * kSecond) << "setup overran the kill time";
    ASSERT_GE(machine.stats().Get(kStatShadowUpdates), 1)
        << ToString(kind) << ": no writeback ever reached the backup";

    AdvancePast(machine, 1 * kSecond);

    // Page 0 was evicted and written back long ago: committed, witnessed by
    // node 2's manifest, and now unrecoverable. The access must fail loudly.
    auto f = survivor.WriteU64(0, 9);
    machine.Run();
    ASSERT_TRUE(f.ready()) << ToString(kind) << ": lost-page probe wedged";
    EXPECT_EQ(f.value(), Status::kDataLost)
        << ToString(kind) << ": a committed page silently zero-filled";
    EXPECT_GE(machine.stats().Get(kStatLostPages), 1) << ToString(kind);
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();
  }
}

// Pure bystander death: the victim holds read copies and nothing else — no
// manager role, no ownership. Recovery must be a non-event: the gossiped death
// notice drops it from invalidation rounds, and there must be EXACTLY zero
// promotions (a promotion here would mean the ring rule fired for a node that
// managed nothing).
TEST(FailoverTest, BystanderDeathCausesZeroPromotions) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    config.fault.removals.push_back({3, 200 * kMillisecond});
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
    Machine machine(config);
    CoherenceOracle oracle;

    constexpr VmSize kPages = 3;
    MemObjectId region = machine.CreateSharedRegion(0, kPages);
    TaskMemory& writer = machine.MapRegion(1, region);
    TaskMemory& bystander = machine.MapRegion(3, region);
    TaskMemory& observer = machine.MapRegion(2, region);

    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      SyncWrite(machine, writer, addr, 100 + p);
      oracle.RecordWrite(addr, 100 + p);
      oracle.CheckRead(addr, SyncRead(machine, bystander, addr));
    }
    ASSERT_LT(machine.Now(), 200 * kMillisecond);

    AdvancePast(machine, 200 * kMillisecond);

    // Re-writes must invalidate past the dead reader (first write pays the
    // detection horizon, gossips the death, and later rounds skip the victim),
    // and reads elsewhere see the new values.
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      SyncWrite(machine, writer, addr, 200 + p);
      oracle.RecordWrite(addr, 200 + p);
      oracle.CheckRead(addr, SyncRead(machine, observer, addr));
    }

    EXPECT_EQ(oracle.violations(), 0) << ToString(kind);
    EXPECT_EQ(machine.stats().Get(kStatPromotions), 0)
        << ToString(kind) << ": a bystander death must not promote anything";
    EXPECT_EQ(machine.stats().Get(kStatLeaseReclaims), 0) << ToString(kind);
    EXPECT_GE(machine.stats().Get(kStatDeathNotices), 1)
        << ToString(kind) << ": confirmed death never gossiped";
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();
  }
}

// Regression for the stranded-shadow-stream bug: the home's shadow backup dies
// mid-writeback-stream. Later writebacks must notice the ring successor
// changed, replay the whole ledger to the new backup, and keep streaming —
// so when the home itself dies later, the new backup resurrects every
// written-back page.
TEST(FailoverTest, BackupDeathRetargetsTheShadowStream) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    config.user_memory_bytes = 40 * 8192;  // 40 frames: 64 pages must evict
    config.fault.removals.push_back({1, 600 * kMillisecond});  // the backup
    config.fault.removals.push_back({0, 2 * kSecond});         // then the home
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
    Machine machine(config);
    CoherenceOracle oracle;

    constexpr VmSize kPages = 64;
    constexpr VmSize kFirstHalf = 44;
    MemObjectId region = machine.CreateSharedRegion(0, kPages);
    TaskMemory& writer = machine.MapRegion(3, region);

    // First half: evictions stream writebacks to node 0's backup, node 1.
    for (VmSize p = 0; p < kFirstHalf; ++p) {
      const VmOffset addr = p * machine.page_size();
      SyncWrite(machine, writer, addr, 7000 + p);
      oracle.RecordWrite(addr, 7000 + p);
    }
    ASSERT_LT(machine.Now(), 600 * kMillisecond) << "first half overran the backup kill";
    ASSERT_GE(machine.stats().Get(kStatShadowUpdates), 1)
        << ToString(kind) << ": no writeback reached the original backup";

    // Backup dies; the remaining writes must re-target the stream to node 2
    // and replay the ledger there — no detection needed, the ring rule sees
    // the dead successor at the next mirror.
    AdvancePast(machine, 600 * kMillisecond);
    for (VmSize p = kFirstHalf; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      SyncWrite(machine, writer, addr, 7000 + p);
      oracle.RecordWrite(addr, 7000 + p);
    }
    ASSERT_LT(machine.Now(), 2 * kSecond) << "second half overran the home kill";
    EXPECT_GE(machine.stats().Get(kStatShadowRestreams), 1)
        << ToString(kind) << ": the ledger was never replayed to the new backup";

    // Home dies; promotion lands on node 2 (node 1 is gone), whose replayed
    // shadow store must resurrect every written-back page.
    AdvancePast(machine, 2 * kSecond);
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      oracle.CheckRead(addr, SyncRead(machine, writer, addr));
    }
    EXPECT_EQ(oracle.violations(), 0) << ToString(kind);
    EXPECT_GE(machine.stats().Get(kStatPromotions), 1) << ToString(kind);
    EXPECT_GE(machine.stats().Get(kStatReconstructedPages), 1) << ToString(kind);
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();
  }
}

// The shadow-replication path: a memory-starved writer evicts dirty pages all
// the way to the home's paging space, each writeback streaming to the backup.
// When the home dies with the only durable copies, promotion must resurrect
// every one of them from the shadow store — pre-kill writes survive even
// though no surviving kernel holds the pages.
TEST(FailoverTest, ShadowStoreResurrectsWrittenBackPages) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    config.user_memory_bytes = 40 * 8192;  // 40 frames: 64 pages must evict
    // The 64 evicting writes take ~300 ms of simulated time; kill well after.
    config.fault.removals.push_back({0, 1 * kSecond});
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
    Machine machine(config);
    CoherenceOracle oracle;

    constexpr VmSize kPages = 64;
    MemObjectId region = machine.CreateSharedRegion(0, kPages);
    TaskMemory& writer = machine.MapRegion(1, region);

    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      SyncWrite(machine, writer, addr, 7000 + p);
      oracle.RecordWrite(addr, 7000 + p);
    }
    ASSERT_LT(machine.Now(), 1 * kSecond) << "setup overran the kill time";
    EXPECT_GE(machine.stats().Get(kStatShadowUpdates), 1)
        << ToString(kind) << ": no writeback ever reached the backup";

    AdvancePast(machine, 1 * kSecond);

    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      oracle.CheckRead(addr, SyncRead(machine, writer, addr));
    }
    EXPECT_EQ(oracle.violations(), 0) << ToString(kind);
    EXPECT_GE(machine.stats().Get(kStatPromotions), 1) << ToString(kind);
    EXPECT_GE(machine.stats().Get(kStatReconstructedPages), 1) << ToString(kind);
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();
  }
}

// The lease state machine: node 0 owns dirty pages when it is removed. The
// home (node 1, alive) must not reclaim while the lease runs — a transfer
// racing the removal could still surface — and must reclaim afterwards,
// serving the newest surviving contents (the un-written-back modifications
// died with the owner).
TEST(FailoverTest, LeaseExpiryReclaimsADeadOwnersPages) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    config.fault.removals.push_back({0, 200 * kMillisecond});
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.failover.lease_ns = 50 * kMillisecond;
    config.stall_watchdog = true;
    Machine machine(config);

    MemObjectId region = machine.CreateSharedRegion(1, 2);
    TaskMemory& doomed = machine.MapRegion(0, region);
    TaskMemory& survivor = machine.MapRegion(2, region);

    SyncWrite(machine, doomed, 0, 42);  // node 0 owns the dirty page
    ASSERT_LT(machine.Now(), 200 * kMillisecond);

    // Past removal AND past lease expiry (200 ms + 50 ms).
    AdvancePast(machine, 260 * kMillisecond);

    const uint64_t got = SyncRead(machine, survivor, 0);
    EXPECT_EQ(got, 0u) << ToString(kind)
                       << ": the dead owner's un-written-back write must be lost,"
                          " not invented";
    EXPECT_GE(machine.stats().Get(kStatLeaseReclaims), 1) << ToString(kind);
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();

    // The reclaimed page is a normal page again: writable and coherent.
    SyncWrite(machine, survivor, 0, 43);
    EXPECT_EQ(SyncRead(machine, survivor, 0), 43u) << ToString(kind);
  }
}

// Rolling restart: the removed manager rejoins at 400 ms with cold caches
// (DsmSystem::ColdRestart runs as a cluster mutation). The machine must serve
// through all three phases — healthy, degraded, rejoined — and the restarted
// node must immediately participate again.
TEST(FailoverTest, RollingRestartRejoinsWithColdCaches) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 4;
    config.dsm = kind;
    EXPECT_TRUE(FaultProfileFromName("rolling-restart", 1, config.nodes, &config.fault));
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
    Machine machine(config);
    CoherenceOracle oracle;

    constexpr VmSize kPages = 4;
    MemObjectId region = machine.CreateSharedRegion(0, kPages);
    std::vector<TaskMemory*> mems;
    for (NodeId n = 0; n < 4; ++n) {
      mems.push_back(&machine.MapRegion(n, region));
    }

    // Healthy phase, writers on the nodes that will survive. Sliced: the
    // restore wake at 400 ms is already queued, so a full drain would skip
    // straight past the rejoin.
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      SlicedWrite(machine, *mems[1 + p % 3], addr, 100 + p);
      oracle.RecordWrite(addr, 100 + p);
    }
    ASSERT_LT(machine.Now(), 200 * kMillisecond);

    // Degraded phase: node 0 removed; survivors keep reading and writing.
    AdvanceTo(machine, 200 * kMillisecond);
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      oracle.CheckRead(addr, SlicedRead(machine, *mems[1 + (p + 1) % 3], addr));
      SlicedWrite(machine, *mems[1 + (p + 2) % 3], addr, 200 + p);
      oracle.RecordWrite(addr, 200 + p);
    }

    // Rejoined phase: past 400 ms the cold restart has run as a mutation; the
    // restarted node reads the survivors' values and takes writes again.
    AdvanceTo(machine, 400 * kMillisecond + kMillisecond);
    EXPECT_GE(machine.stats().Get(kStatRestarts), 1) << ToString(kind);
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = p * machine.page_size();
      oracle.CheckRead(addr, SlicedRead(machine, *mems[0], addr));
      SlicedWrite(machine, *mems[0], addr, 300 + p);
      oracle.RecordWrite(addr, 300 + p);
      oracle.CheckRead(addr, SlicedRead(machine, *mems[2], addr));
    }
    EXPECT_EQ(oracle.violations(), 0) << ToString(kind);
    EXPECT_EQ(machine.stats().Get("sim.stalls_detected"), 0)
        << ToString(kind) << "\n" << machine.last_stall_report();
  }
}

// Healthy-run guard: with failover on but a fault plan that never removes a
// node, the machine stays on the healthy protocol path — no promotions, no
// lease reclaims, no restarts — and the timeline is bit-stable across re-runs
// (shadow mirroring is deterministic traffic, not a noise source). Goldens
// with failover *disabled* are covered by the determinism suite.
TEST(FailoverTest, HealthyRunWithFailoverOnIsQuietAndBitStable) {
  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    auto digest = [kind]() {
      MachineConfig config;
      config.nodes = 4;
      config.dsm = kind;
      // 10 ms initial timeout: the retry horizon (10+20+40+80 ms) comfortably
      // exceeds XMM's worst healthy serve (~33 ms: flush round + NMK13 dirty
      // cleaning + pager supply), so a quiet run really is silent. A 2 ms
      // horizon would spuriously exhaust and exercise the (benign, idempotent)
      // reissue path on every manager-side flush.
      config.retry.timeout_ns = 10 * kMillisecond;
      config.failover.enabled = true;
      Machine machine(config);
      MemObjectId region = machine.CreateSharedRegion(0, 4);
      std::vector<TaskMemory*> mems;
      for (NodeId n = 0; n < 4; ++n) {
        mems.push_back(&machine.MapRegion(n, region));
      }
      uint64_t h = 14695981039346656037ULL;
      for (int i = 0; i < 24; ++i) {
        const VmOffset addr = static_cast<VmOffset>(i % 4) * machine.page_size();
        SyncWrite(machine, *mems[i % 4], addr, static_cast<uint64_t>(i));
        h = Fnv1a(h, SyncRead(machine, *mems[(i + 1) % 4], addr));
        h = Fnv1a(h, static_cast<uint64_t>(machine.Now()));
      }
      h = Fnv1a(h, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
      h = Fnv1a(h, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
      EXPECT_EQ(machine.stats().Get(kStatPromotions), 0) << ToString(kind);
      EXPECT_EQ(machine.stats().Get(kStatLeaseReclaims), 0) << ToString(kind);
      EXPECT_EQ(machine.stats().Get(kStatRestarts), 0) << ToString(kind);
      EXPECT_EQ(machine.stats().Get("dsm.op_node_down"), 0) << ToString(kind);
      EXPECT_EQ(machine.stats().Get("dsm.op_timeouts"), 0) << ToString(kind);
      EXPECT_EQ(machine.stats().Get(kStatReissues), 0) << ToString(kind);
      return h;
    };
    EXPECT_EQ(digest(), digest())
        << ToString(kind) << ": healthy failover-on timeline not bit-stable";
  }
}

}  // namespace
}  // namespace asvm
