// Systematic EMMI matrix: every lock_request mode against every page state,
// supply modes, pull outcomes, fork inheritance combinations, and waiter
// semantics — the contract the DSM layers are built on.
#include <gtest/gtest.h>

#include "src/machvm/default_pager.h"
#include "src/machvm/disk.h"
#include "src/machvm/node_vm.h"
#include "src/machvm/task_memory.h"
#include "src/sim/engine.h"

namespace asvm {
namespace {

class NullPager : public Pager {
 public:
  void DataRequest(VmObject&, PageIndex, PageAccess) override { ++requests; }
  void DataUnlock(VmObject&, PageIndex, PageAccess) override { ++unlocks; }
  EvictAction OnEvict(VmObject&, PageIndex, PageBuffer, bool) override {
    ++evictions;
    return EvictAction::kDiscard;
  }
  void LockCompleted(VmObject&, PageIndex, LockResult) override {}
  void PullCompleted(VmObject&, PageIndex, PullResult) override {}

  int requests = 0;
  int unlocks = 0;
  int evictions = 0;
};

class EmmiMatrixTest : public ::testing::Test {
 protected:
  EmmiMatrixTest()
      : vm_(engine_, 0, VmParams{.page_size = 4096, .frame_capacity = 64, .costs = {}}, &stats_) {}

  PageBuffer MakePage(uint64_t value) {
    auto page = AllocPage(4096);
    memcpy(page->data(), &value, 8);
    return page;
  }

  uint64_t PageValue(VmObject& obj, PageIndex page) {
    VmPage* vp = obj.FindResident(page);
    EXPECT_NE(vp, nullptr);
    uint64_t v = 0;
    memcpy(&v, vp->data->data(), 8);
    return v;
  }

  Engine engine_;
  StatsRegistry stats_;
  NodeVm vm_;
};

TEST_F(EmmiMatrixTest, LockModeMatrix) {
  struct Case {
    LockMode mode;
    PageAccess new_lock;
    bool expect_resident_after;
    PageAccess expect_lock_after;
  };
  const Case cases[] = {
      {LockMode::kDowngrade, PageAccess::kRead, true, PageAccess::kRead},
      {LockMode::kFlush, PageAccess::kNone, false, PageAccess::kNone},
      {LockMode::kPushAndLock, PageAccess::kRead, true, PageAccess::kRead},
      {LockMode::kPushAndFlush, PageAccess::kNone, false, PageAccess::kNone},
  };
  for (const Case& c : cases) {
    auto obj = vm_.CreateObject(2);
    vm_.DataSupply(*obj, 0, MakePage(7), PageAccess::kWrite);
    LockResult result{};
    vm_.LockRequest(*obj, 0, c.new_lock, c.mode, [&](LockResult r) { result = r; });
    engine_.Run();
    EXPECT_EQ(result, LockResult::kDone) << "mode " << static_cast<int>(c.mode);
    VmPage* vp = obj->FindResident(0);
    EXPECT_EQ(vp != nullptr, c.expect_resident_after) << "mode " << static_cast<int>(c.mode);
    if (vp != nullptr) {
      EXPECT_EQ(vp->lock, c.expect_lock_after);
    }
  }
}

TEST_F(EmmiMatrixTest, LockModesOnAbsentPageAllReportNotResident) {
  auto obj = vm_.CreateObject(2);
  for (LockMode mode : {LockMode::kDowngrade, LockMode::kFlush, LockMode::kPushAndLock,
                        LockMode::kPushAndFlush}) {
    LockResult result = LockResult::kDone;
    vm_.LockRequest(*obj, 0, PageAccess::kRead, mode, [&](LockResult r) { result = r; });
    engine_.Run();
    EXPECT_EQ(result, LockResult::kNotResident) << "mode " << static_cast<int>(mode);
  }
}

TEST_F(EmmiMatrixTest, PushModesFeedTheChainOnceEach) {
  auto source = vm_.CreateObject(2);
  auto copy = vm_.CreateAsymmetricCopy(source);
  vm_.DataSupply(*source, 0, MakePage(11), PageAccess::kWrite);
  // kPushAndLock pushes pre-write data and keeps the source page.
  vm_.LockRequest(*source, 0, PageAccess::kRead, LockMode::kPushAndLock, [](LockResult) {});
  engine_.Run();
  ASSERT_NE(copy->FindResident(0), nullptr);
  EXPECT_EQ(PageValue(*copy, 0), 11u);
  // Overwrite source, then kPushAndFlush: copy already has page -> no second
  // push, source flushed.
  source->FindResident(0)->data = MakePage(12);
  vm_.LockRequest(*source, 0, PageAccess::kNone, LockMode::kPushAndFlush, [](LockResult) {});
  engine_.Run();
  EXPECT_EQ(source->FindResident(0), nullptr);
  EXPECT_EQ(PageValue(*copy, 0), 11u) << "the earlier snapshot must not be overwritten";
}

TEST_F(EmmiMatrixTest, PullResultMatrix) {
  // kData from the object itself.
  auto obj = vm_.CreateObject(2);
  vm_.DataSupply(*obj, 0, MakePage(5), PageAccess::kWrite);
  PullResult r1;
  vm_.PullRequest(*obj, 0, [&](PullResult r) { r1 = r; });
  engine_.Run();
  EXPECT_EQ(r1.kind, PullResult::Kind::kData);

  // kData through an unmanaged shadow.
  auto copy = vm_.CreateAsymmetricCopy(obj);
  PullResult r2;
  vm_.PullRequest(*copy, 0, [&](PullResult r) { r2 = r; });
  engine_.Run();
  EXPECT_EQ(r2.kind, PullResult::Kind::kData);

  // kAskShadow when the chain hits a managed object.
  NullPager pager;
  auto managed = vm_.CreateObject(2);
  vm_.RegisterManaged(managed, MemObjectId{0, 42}, &pager);
  auto copy_of_managed = vm_.CreateAsymmetricCopy(managed);
  PullResult r3;
  vm_.PullRequest(*copy_of_managed, 0, [&](PullResult r) { r3 = r; });
  engine_.Run();
  EXPECT_EQ(r3.kind, PullResult::Kind::kAskShadow);
  EXPECT_EQ(r3.shadow_object, (MemObjectId{0, 42}));

  // kZeroFill when the chain is empty.
  auto empty = vm_.CreateObject(2);
  auto copy_of_empty = vm_.CreateAsymmetricCopy(empty);
  PullResult r4;
  vm_.PullRequest(*copy_of_empty, 1, [&](PullResult r) { r4 = r; });
  engine_.Run();
  EXPECT_EQ(r4.kind, PullResult::Kind::kZeroFill);
}

TEST_F(EmmiMatrixTest, PullFindsPagedOutData) {
  // A page evicted to paging space must still be pullable.
  Disk disk(engine_, DiskParams{}, &stats_);
  DefaultPager pager(engine_, &disk, &stats_);
  vm_.SetDefaultPager(&pager);
  auto obj = vm_.CreateObject(2);
  vm_.DataSupply(*obj, 0, MakePage(31), PageAccess::kWrite);
  obj->FindResident(0)->dirty = true;
  ASSERT_EQ(vm_.EvictOnePage(), Status::kOk);
  ASSERT_EQ(obj->FindResident(0), nullptr);
  PullResult got;
  vm_.PullRequest(*obj, 0, [&](PullResult r) { got = r; });
  engine_.Run();
  ASSERT_EQ(got.kind, PullResult::Kind::kData);
  uint64_t v = 0;
  memcpy(&v, got.data->data(), 8);
  EXPECT_EQ(v, 31u);
}

TEST_F(EmmiMatrixTest, ForkInheritanceMatrix) {
  VmMap* parent = vm_.CreateMap();
  auto shared_obj = vm_.CreateObject(2, CopyStrategy::kSymmetric);
  auto copied_obj = vm_.CreateObject(2, CopyStrategy::kSymmetric);
  auto none_obj = vm_.CreateObject(2, CopyStrategy::kSymmetric);
  NullPager pager;
  auto managed_obj = vm_.CreateObject(2, CopyStrategy::kAsymmetric);
  vm_.RegisterManaged(managed_obj, MemObjectId{0, 7}, &pager);

  ASSERT_EQ(parent->Map(0, 2, shared_obj, 0, Inheritance::kShare), Status::kOk);
  ASSERT_EQ(parent->Map(2, 2, copied_obj, 0, Inheritance::kCopy), Status::kOk);
  ASSERT_EQ(parent->Map(4, 2, none_obj, 0, Inheritance::kNone), Status::kOk);
  ASSERT_EQ(parent->Map(6, 2, managed_obj, 0, Inheritance::kCopy), Status::kOk);

  VmMap* child = vm_.ForkMap(*parent);
  // kShare: same object.
  EXPECT_EQ(child->LookupPage(0)->object, shared_obj);
  // kCopy of a temporary object: symmetric (same object + needs_copy).
  EXPECT_EQ(child->LookupPage(2)->object, copied_obj);
  EXPECT_TRUE(child->LookupPage(2)->needs_copy);
  EXPECT_TRUE(parent->LookupPage(2)->needs_copy);
  // kNone: absent.
  EXPECT_EQ(child->LookupPage(4), nullptr);
  // kCopy of a managed object: asymmetric copy object shadowing it.
  ASSERT_NE(child->LookupPage(6), nullptr);
  EXPECT_NE(child->LookupPage(6)->object, managed_obj);
  EXPECT_EQ(child->LookupPage(6)->object->shadow(), managed_obj);
  EXPECT_EQ(managed_obj->copy(), child->LookupPage(6)->object);
}

TEST_F(EmmiMatrixTest, WaitersWakeOnSupplyAndFailure) {
  NullPager pager;
  auto obj = vm_.CreateObject(2, CopyStrategy::kAsymmetric);
  vm_.RegisterManaged(obj, MemObjectId{0, 9}, &pager);
  VmMap* map = vm_.CreateMap();
  ASSERT_EQ(map->Map(0, 2, obj, 0, Inheritance::kShare), Status::kOk);

  auto f1 = vm_.Fault(*map, 0, PageAccess::kRead);
  auto f2 = vm_.Fault(*map, 100, PageAccess::kRead);  // same page
  engine_.Run();
  EXPECT_EQ(pager.requests, 1) << "duplicate requests must be suppressed";
  vm_.DataSupply(*obj, 0, MakePage(1), PageAccess::kRead);
  engine_.Run();
  EXPECT_TRUE(f1.ready());
  EXPECT_TRUE(f2.ready());

  auto f3 = vm_.Fault(*map, 4096, PageAccess::kWrite);
  engine_.Run();
  vm_.FaultFailed(*obj, 1, Status::kUnavailable);
  engine_.Run();
  ASSERT_TRUE(f3.ready());
  EXPECT_EQ(f3.value(), Status::kUnavailable);
}

TEST_F(EmmiMatrixTest, SupplyReplacingResidentPageKeepsFrameCount) {
  auto obj = vm_.CreateObject(2);
  vm_.DataSupply(*obj, 0, MakePage(1), PageAccess::kRead);
  const size_t used = vm_.frames_used();
  vm_.DataSupply(*obj, 0, MakePage(2), PageAccess::kWrite);
  EXPECT_EQ(vm_.frames_used(), used) << "replacement must not leak a frame";
  EXPECT_EQ(PageValue(*obj, 0), 2u);
}

TEST_F(EmmiMatrixTest, ExtractThenSupplyRoundTrip) {
  auto obj = vm_.CreateObject(2);
  vm_.DataSupply(*obj, 0, MakePage(9), PageAccess::kWrite);
  const size_t used_before = vm_.frames_used();
  auto ex = vm_.ExtractPage(*obj, 0);
  EXPECT_TRUE(ex.was_resident);
  EXPECT_EQ(vm_.frames_used(), used_before - 1);
  vm_.DataSupply(*obj, 0, std::move(ex.data), PageAccess::kWrite);
  EXPECT_EQ(vm_.frames_used(), used_before);
  EXPECT_EQ(PageValue(*obj, 0), 9u);
}

}  // namespace
}  // namespace asvm
