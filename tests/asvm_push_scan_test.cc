// The hard corners of §3.7.2: push operations when copy objects are shared
// between nodes, push scans cancelling redundant pushes, and the push/pull
// race retry of §3.7.3.
#include <gtest/gtest.h>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "src/machvm/task_memory.h"
#include "tests/dsm_test_util.h"

namespace asvm {
namespace {

class PushScanTest : public ::testing::Test {
 protected:
  void Build(int nodes) {
    cluster_ = std::make_unique<Cluster>(SmallClusterParams(nodes));
    system_ = std::make_unique<AsvmSystem>(*cluster_);
  }

  TaskMemory MakeParent(NodeId node, VmSize pages) {
    NodeVm& vm = cluster_->vm(node);
    VmMap* map = vm.CreateMap();
    auto obj = vm.CreateObject(pages, CopyStrategy::kSymmetric);
    EXPECT_EQ(map->Map(0, pages, obj, 0, Inheritance::kCopy), Status::kOk);
    return TaskMemory(vm, *map);
  }

  TaskMemory Fork(NodeId src, TaskMemory& parent, NodeId dst) {
    auto f = system_->RemoteFork(src, parent.map(), dst);
    cluster_->Run();
    EXPECT_TRUE(f.ready());
    return TaskMemory(cluster_->vm(dst), *f.value());
  }

  uint64_t Read(TaskMemory& mem, VmOffset addr) {
    auto f = mem.ReadU64(addr);
    cluster_->Run();
    EXPECT_TRUE(f.ready());
    return f.ready() ? f.value() : ~0ULL;
  }

  void Write(TaskMemory& mem, VmOffset addr, uint64_t value) {
    auto f = mem.WriteU64(addr, value);
    cluster_->Run();
    ASSERT_TRUE(f.ready());
    ASSERT_EQ(f.value(), Status::kOk);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<AsvmSystem> system_;
};

TEST_F(PushScanTest, ScanCancelsPushWhenGrandchildAlreadyPulled) {
  // Chain 0 -> 1 -> 2. The grandchild (node 2) pulls a page of the middle
  // copy object, making it owned in that copy's space. A later write on the
  // ORIGINAL object must scan, find that owner, and cancel the data push —
  // the pulled snapshot is already the right value.
  Build(3);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 42);
  TaskMemory gen1 = Fork(0, gen0, 1);
  TaskMemory gen2 = Fork(1, gen1, 2);

  // Grandchild reads first: the page is pulled through the chain and owned
  // in the middle copy's space (the copy object shared by nodes 1 and 2).
  EXPECT_EQ(Read(gen2, 0), 42u);
  const int64_t scans_before = cluster_->stats().Get("asvm.push_scans");

  // Now the original writes. Its newest copy object (gen1's memory) is
  // shared between nodes 1 and 2, so a push scan must run.
  Write(gen0, 0, 43);
  EXPECT_GT(cluster_->stats().Get("asvm.push_scans"), scans_before);

  // Snapshots intact everywhere.
  EXPECT_EQ(Read(gen2, 0), 42u);
  EXPECT_EQ(Read(gen1, 0), 42u);
  EXPECT_EQ(Read(gen0, 0), 43u);
}

TEST_F(PushScanTest, ScanFindsNothingAndPushProceeds) {
  Build(3);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 7);
  TaskMemory gen1 = Fork(0, gen0, 1);
  TaskMemory gen2 = Fork(1, gen1, 2);

  // Nobody pulled; the write must push the snapshot into the copy chain.
  const int64_t pushes_before = cluster_->stats().Get("asvm.push_operations");
  Write(gen0, 0, 8);
  EXPECT_GT(cluster_->stats().Get("asvm.push_operations"), pushes_before);
  EXPECT_EQ(Read(gen2, 0), 7u);
  EXPECT_EQ(Read(gen1, 0), 7u);
}

TEST_F(PushScanTest, WriteInMiddleGenerationPushesToItsOwnCopy) {
  // gen1's memory is itself a source (gen2 is its copy). A write by gen1
  // must push gen1's pre-write value toward gen2, not touch gen0.
  Build(3);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 1);
  TaskMemory gen1 = Fork(0, gen0, 1);
  Write(gen1, 0, 2);  // gen1 owns its version now
  TaskMemory gen2 = Fork(1, gen1, 2);
  Write(gen1, 0, 3);  // pushes "2" toward gen2

  EXPECT_EQ(Read(gen0, 0), 1u);
  EXPECT_EQ(Read(gen1, 0), 3u);
  EXPECT_EQ(Read(gen2, 0), 2u);
}

TEST_F(PushScanTest, ConcurrentPullAndPushResolveConsistently) {
  // §3.7.3: a pull entering the source while a push is in progress is held
  // and bounced with a retry indicator. Fire both at once and check the
  // values come out right regardless of interleaving.
  Build(3);
  TaskMemory gen0 = MakeParent(0, 8);
  for (VmOffset p = 0; p < 8; ++p) {
    Write(gen0, p * 4096, 100 + p);
  }
  TaskMemory gen1 = Fork(0, gen0, 1);
  TaskMemory gen2 = Fork(1, gen1, 2);

  // Concurrently: gen0 writes pages (pushes) while gen2 reads them (pulls).
  std::vector<Future<Status>> writes;
  std::vector<Future<uint64_t>> reads;
  for (VmOffset p = 0; p < 8; ++p) {
    writes.push_back(gen0.WriteU64(p * 4096, 200 + p));
    reads.push_back(gen2.ReadU64(p * 4096));
  }
  cluster_->Run();
  for (VmOffset p = 0; p < 8; ++p) {
    ASSERT_TRUE(writes[p].ready()) << "write " << p;
    ASSERT_TRUE(reads[p].ready()) << "read " << p;
    // The grandchild must see the fork-time snapshot, never the new value.
    EXPECT_EQ(reads[p].value(), 100 + p) << "page " << p;
  }
  // And the parent's writes landed.
  for (VmOffset p = 0; p < 8; ++p) {
    EXPECT_EQ(Read(gen0, p * 4096), 200 + p);
  }
}

TEST_F(PushScanTest, PushedPagesSurviveEvictionAtPeer) {
  // Push data into the copy object, then evict it at the peer: the contents
  // must re-materialize from the peer's paging space on the next pull.
  cluster_ = std::make_unique<Cluster>(SmallClusterParams(2, /*frames=*/16));
  system_ = std::make_unique<AsvmSystem>(*cluster_);
  TaskMemory gen0 = MakeParent(0, 4);
  Write(gen0, 0, 77);
  TaskMemory gen1 = Fork(0, gen0, 1);
  Write(gen0, 0, 78);  // pushes 77 into gen1's copy on node 1

  // Thrash node 1 to evict the pushed page.
  for (VmOffset p = 1; p < 4; ++p) {
    Write(gen1, p * 4096, p);
  }
  TaskMemory filler = MakeParent(1, 40);
  for (VmOffset p = 0; p < 40; ++p) {
    Write(filler, p * 4096, p);
  }
  EXPECT_EQ(Read(gen1, 0), 77u) << "pushed snapshot must survive peer eviction";
}

}  // namespace
}  // namespace asvm
