// Cross-backend protocol conformance: the CoherenceOracle (tests/dsm_test_util.h)
// is run against every DsmSystem backend — ASVM, XMM, and IVY — under a table
// of operating regimes. The contract is identical for all three protocols:
//   1. A read returns exactly the last committed write (sequential consistency
//      for the one-op-at-a-time driver), regardless of which fault regime was
//      active when the access ran.
//   2. No access wedges: the machine must quiesce with every future resolved.
//   3. In the kill-owner regime, pages whose owner died but whose contents
//      survive elsewhere (a read copy, the manager's coherent version, or the
//      shadow backup) must be reconstructed bit-exact — never zero-filled.
//
// Regimes: quiescent (no faults), jitter / slow-node / degraded-links
// (delay-only profiles with timeouts and retries armed), and kill-owner (a
// page-owning node is removed mid-run with failover enabled).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/machine.h"
#include "src/mesh/fault_plan.h"

#include "dsm_test_util.h"

namespace asvm {
namespace {

constexpr SimTime kKillAt = 1 * kSecond;
constexpr NodeId kVictim = 3;

struct ConformanceConfig {
  DsmKind dsm;
  // "quiescent", a FaultProfileFromName delay profile, or "kill-owner".
  const char* regime;
  const char* label;
  uint64_t fault_seed = 0;
};

std::string ConfigName(const ::testing::TestParamInfo<ConformanceConfig>& info) {
  return info.param.label;
}

bool IsKillRegime(const ConformanceConfig& p) {
  return std::string(p.regime) == "kill-owner";
}

// The backend factory: one MachineConfig per (backend, regime) cell. The
// kill-owner regime builds its removal by hand (rather than via the CLI
// profile) so the kill lands at a time the oracle phases control.
std::unique_ptr<Machine> BuildMachine(const ConformanceConfig& p) {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = p.dsm;
  const std::string regime = p.regime;
  if (regime == "kill-owner") {
    config.fault.removals.push_back({kVictim, kKillAt});
    config.retry.timeout_ns = 2 * kMillisecond;
    config.failover.enabled = true;
    config.stall_watchdog = true;
  } else if (regime != "quiescent") {
    EXPECT_TRUE(FaultProfileFromName(p.regime, p.fault_seed, config.nodes, &config.fault));
    config.retry.timeout_ns = 20 * kMillisecond;
    config.stall_watchdog = true;
  }
  return std::make_unique<Machine>(config);
}

class ProtocolConformanceTest : public ::testing::TestWithParam<ConformanceConfig> {
 protected:
  static constexpr VmSize kPages = 8;

  void Build() {
    machine_ = BuildMachine(GetParam());
    region_ = machine_->CreateSharedRegion(0, kPages);
    for (NodeId n = 0; n < machine_->nodes(); ++n) {
      mems_.push_back(&machine_->MapRegion(n, region_));
    }
  }

  VmOffset PageAddr(VmSize page) const { return page * machine_->page_size(); }

  uint64_t SyncRead(NodeId n, VmOffset addr) {
    auto f = mems_[n]->ReadU64(addr);
    machine_->Run();
    EXPECT_TRUE(f.ready()) << "read wedged (node " << n << ", addr " << addr << ")";
    return f.ready() ? f.value() : ~0ULL;
  }

  void SyncWrite(NodeId n, VmOffset addr, uint64_t value) {
    auto f = mems_[n]->WriteU64(addr, value);
    machine_->Run();
    ASSERT_TRUE(f.ready()) << "write wedged (node " << n << ", addr " << addr << ")";
    ASSERT_EQ(f.value(), Status::kOk);
  }

  void AdvancePast(SimTime when) {
    if (machine_->Now() <= when) {
      machine_->engine().Schedule(when - machine_->Now() + kMillisecond, []() {});
      machine_->Run();
    }
    ASSERT_GT(machine_->Now(), when);
  }

  void ExpectClean() {
    EXPECT_EQ(oracle_.violations(), 0) << GetParam().label;
    EXPECT_EQ(machine_->stats().Get("sim.stalls_detected"), 0)
        << GetParam().label << "\n" << machine_->last_stall_report();
  }

  std::unique_ptr<Machine> machine_;
  MemObjectId region_;
  std::vector<TaskMemory*> mems_;
  CoherenceOracle oracle_;
};

// Randomized single-op driver against the oracle. In the kill-owner regime
// the run is phased: first the whole cluster (victim included) mixes reads
// and writes, every victim write is witnessed by a survivor read (leaving a
// reconstructible copy), then the victim dies and the survivors re-verify and
// keep mutating every page.
TEST_P(ProtocolConformanceTest, RandomOpsMatchOracleAcrossRegimes) {
  Build();
  const bool kill = IsKillRegime(GetParam());
  Rng rng(0xD15C + GetParam().fault_seed);
  uint64_t next_value = 1;

  const int healthy_ops = kill ? 40 : 220;
  for (int i = 0; i < healthy_ops; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(mems_.size()));
    const VmOffset addr = PageAddr(rng.NextBelow(kPages));
    if (rng.NextBool(0.45)) {
      const uint64_t value = next_value++;
      SyncWrite(node, addr, value);
      oracle_.RecordWrite(addr, value);
      if (kill && node == kVictim) {
        // Witness the doomed owner's write from a survivor so the contents
        // outlive it (read copy + manager/shadow path, backend-dependent).
        oracle_.CheckRead(addr, SyncRead((node + 1) % mems_.size(), addr));
      }
    } else {
      oracle_.CheckRead(addr, SyncRead(node, addr));
    }
    ASSERT_EQ(oracle_.violations(), 0)
        << GetParam().label << ": divergence at op " << i << " (node " << node << ")";
  }

  if (kill) {
    ASSERT_LT(machine_->Now(), kKillAt) << "healthy phase overran the kill time";
    // Make sure the victim owns at least one page when it dies: the last
    // healthy-phase write comes from the victim and is witnessed.
    const VmOffset doomed = PageAddr(kPages - 1);
    const uint64_t value = next_value++;
    SyncWrite(kVictim, doomed, value);
    oracle_.RecordWrite(doomed, value);
    oracle_.CheckRead(doomed, SyncRead(0, doomed));

    AdvancePast(kKillAt);

    // Survivors: every page must read back bit-exact through the recovery
    // machinery, then stay writable and coherent.
    for (VmSize p = 0; p < kPages; ++p) {
      const VmOffset addr = PageAddr(p);
      const NodeId reader = static_cast<NodeId>((p + (p >= kVictim ? 1 : 0)) % mems_.size());
      const NodeId survivor_reader = reader == kVictim ? 0 : reader;
      oracle_.CheckRead(addr, SyncRead(survivor_reader, addr));
      ASSERT_EQ(oracle_.violations(), 0)
          << GetParam().label << ": post-kill recovery diverged on page " << p;
    }
    for (int i = 0; i < 60; ++i) {
      NodeId node = static_cast<NodeId>(rng.NextBelow(mems_.size()));
      if (node == kVictim) {
        node = (node + 1) % static_cast<NodeId>(mems_.size());
      }
      const VmOffset addr = PageAddr(rng.NextBelow(kPages));
      if (rng.NextBool(0.5)) {
        const uint64_t v = next_value++;
        SyncWrite(node, addr, v);
        oracle_.RecordWrite(addr, v);
      } else {
        oracle_.CheckRead(addr, SyncRead(node, addr));
      }
      ASSERT_EQ(oracle_.violations(), 0)
          << GetParam().label << ": post-kill divergence at op " << i;
    }
  }

  ExpectClean();
}

// Write-contention conformance: concurrent writers to one page must leave a
// single agreed value that one of them wrote — the single-writer invariant
// every backend claims, exercised under each regime's delivery schedule.
TEST_P(ProtocolConformanceTest, ConcurrentWritersLeaveOneCommittedValue) {
  Build();
  // Node-removal regimes are covered by the phased oracle test above; this
  // driver issues concurrent blind writes, which are not meaningful while a
  // victim is being removed mid-round.
  if (IsKillRegime(GetParam())) {
    GTEST_SKIP() << "concurrent blind writes are a healthy-regime driver";
  }
  Rng rng(0xFACE + GetParam().fault_seed);
  const int rounds = 25;
  for (int round = 0; round < rounds; ++round) {
    const VmOffset addr = PageAddr(rng.NextBelow(kPages));
    std::vector<uint64_t> values;
    std::vector<Future<Status>> writes;
    const int writers = 2 + static_cast<int>(rng.NextBelow(3));
    for (int w = 0; w < writers; ++w) {
      const NodeId node = static_cast<NodeId>(rng.NextBelow(mems_.size()));
      const uint64_t value = static_cast<uint64_t>(round) * 100 + 1 + static_cast<uint64_t>(w);
      values.push_back(value);
      writes.push_back(mems_[node]->WriteU64(addr, value));
    }
    machine_->Run();
    for (auto& w : writes) {
      ASSERT_TRUE(w.ready()) << GetParam().label << ": contended write wedged";
      ASSERT_EQ(w.value(), Status::kOk);
    }
    uint64_t agreed = 0;
    for (size_t n = 0; n < mems_.size(); ++n) {
      const uint64_t got = SyncRead(static_cast<NodeId>(n), addr);
      if (n == 0) {
        agreed = got;
        ASSERT_TRUE(std::find(values.begin(), values.end(), agreed) != values.end())
            << GetParam().label << ": value " << agreed << " was never written"
            << " (round " << round << ")";
      } else {
        ASSERT_EQ(got, agreed)
            << GetParam().label << ": nodes disagree in round " << round;
      }
    }
  }
  EXPECT_EQ(machine_->stats().Get("sim.stalls_detected"), 0)
      << GetParam().label << "\n" << machine_->last_stall_report();
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, ProtocolConformanceTest,
    ::testing::Values(
        // Quiescent: the baseline contract, no fault plan at all.
        ConformanceConfig{DsmKind::kAsvm, "quiescent", "AsvmQuiescent"},
        ConformanceConfig{DsmKind::kXmm, "quiescent", "XmmQuiescent"},
        ConformanceConfig{DsmKind::kIvy, "quiescent", "IvyQuiescent"},
        // Delay-only fault regimes with timeouts/retries armed.
        ConformanceConfig{DsmKind::kAsvm, "jitter", "AsvmJitter", 7},
        ConformanceConfig{DsmKind::kXmm, "jitter", "XmmJitter", 7},
        ConformanceConfig{DsmKind::kIvy, "jitter", "IvyJitter", 7},
        ConformanceConfig{DsmKind::kAsvm, "slow-node", "AsvmSlowNode", 13},
        ConformanceConfig{DsmKind::kXmm, "slow-node", "XmmSlowNode", 13},
        ConformanceConfig{DsmKind::kIvy, "slow-node", "IvySlowNode", 13},
        ConformanceConfig{DsmKind::kAsvm, "degraded-links", "AsvmDegraded", 11},
        ConformanceConfig{DsmKind::kXmm, "degraded-links", "XmmDegraded", 11},
        ConformanceConfig{DsmKind::kIvy, "degraded-links", "IvyDegraded", 11},
        // A page-owning node dies mid-run with failover armed.
        ConformanceConfig{DsmKind::kAsvm, "kill-owner", "AsvmKillOwner"},
        ConformanceConfig{DsmKind::kXmm, "kill-owner", "XmmKillOwner"},
        ConformanceConfig{DsmKind::kIvy, "kill-owner", "IvyKillOwner"}),
    ConfigName);

}  // namespace
}  // namespace asvm
