// Differential oracle for the pooled timer-wheel scheduler: every workload
// here runs once against SchedulerKind::kTimerWheel and once against the
// original heap implementation (SchedulerKind::kReference), and the two must
// produce identical firing orders, Now() trajectories, and executed-event
// counts. The (time, insertion-sequence) ordering contract is the foundation
// of the repo's bit-determinism guarantee, so the suite deliberately stresses
// the wheel's distinct internal paths: the zero-delay ring lane, equal-time
// bursts inside one slot, cascades across wheel levels, the beyond-horizon
// overflow heap, and RunUntil deadline slicing.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/machine.h"
#include "src/sim/engine.h"
#include "src/sim/scheduler.h"

namespace asvm {
namespace {

struct Trace {
  // (event id, firing time) in execution order.
  std::vector<std::pair<int, SimTime>> firings;
  // Now() observed after each RunUntil slice (empty for Run-to-drain mode).
  std::vector<SimTime> slice_times;
  uint64_t executed = 0;
  SimTime final_time = 0;

  friend bool operator==(const Trace&, const Trace&) = default;
};

// Delay menu spanning every scheduler path: ring lane (0), level-0 slots,
// higher wheel levels (exponential spread), and the overflow heap (> 2^48 ns).
SimDuration DrawDelay(Rng& rng) {
  switch (rng.NextBelow(8)) {
    case 0:
      return 0;  // zero-delay fast lane
    case 1:
    case 2:
      return static_cast<SimDuration>(1 + rng.NextBelow(8));  // level-0 collisions
    case 3:
      return static_cast<SimDuration>(rng.NextBelow(1000));
    case 4:
      return static_cast<SimDuration>(1) << rng.NextBelow(40);  // cascade spread
    case 5:
      return static_cast<SimDuration>(64 * (1 + rng.NextBelow(64)));  // slot edges
    case 6:
      return static_cast<SimDuration>(rng.NextBelow(1 << 20));
    default:
      // Beyond the 2^48 ns wheel horizon: must land in the overflow heap and
      // still fire in exact (time, seq) order.
      return (static_cast<SimDuration>(1) << 48) + static_cast<SimDuration>(rng.NextBelow(4096));
  }
}

// Random workload: an initial burst of scheduled events, each of which may
// schedule children when it fires (events scheduled from inside running
// events). The Rng stream is consumed in firing order, so identical firing
// orders consume identical streams — any divergence between schedulers
// snowballs and is caught by the trace comparison.
Trace RunRandomWorkload(SchedulerKind kind, uint64_t seed) {
  Engine engine(kind);
  Rng rng(seed);
  Trace trace;
  int next_id = 0;
  int budget = 400 + static_cast<int>(rng.NextBelow(400));

  struct Spawner {
    Engine& engine;
    Rng& rng;
    Trace& trace;
    int& next_id;
    int& budget;

    void Fire(int id) {
      trace.firings.emplace_back(id, engine.Now());
      // Fan out 0..3 children while budget remains.
      const uint64_t kids = rng.NextBelow(4);
      for (uint64_t k = 0; k < kids && budget > 0; ++k) {
        --budget;
        Schedule(DrawDelay(rng));
      }
      // Occasionally a same-time burst: several events at one future instant,
      // exercising seq-ordered replay within a single wheel slot.
      if (budget >= 4 && rng.NextBool(0.1)) {
        const SimDuration at = 1 + static_cast<SimDuration>(rng.NextBelow(512));
        for (int k = 0; k < 4; ++k) {
          --budget;
          Schedule(at);
        }
      }
    }

    void Schedule(SimDuration delay) {
      const int id = next_id++;
      Spawner* self = this;
      if (delay == 0) {
        engine.Post([self, id]() { self->Fire(id); });
      } else {
        engine.Schedule(delay, [self, id]() { self->Fire(id); });
      }
    }
  };
  Spawner spawner{engine, rng, trace, next_id, budget};

  const int initial = 16 + static_cast<int>(rng.NextBelow(48));
  for (int i = 0; i < initial && budget > 0; ++i) {
    --budget;
    spawner.Schedule(DrawDelay(rng));
  }

  switch (seed % 3) {
    case 0:
      engine.Run();
      break;
    case 1:
      // Drain in random deadline slices; Now() must track deadlines exactly.
      while (!engine.empty()) {
        engine.RunUntil(engine.Now() + static_cast<SimDuration>(1 + rng.NextBelow(100000)));
        trace.slice_times.push_back(engine.Now());
        if (trace.slice_times.size() > 100000) {
          break;  // safety valve; both schedulers hit it identically if ever
        }
      }
      engine.Run();
      break;
    default:
      // RunFor in coarse steps, then drain.
      for (int i = 0; i < 32 && !engine.empty(); ++i) {
        engine.RunFor(static_cast<SimDuration>(1 + rng.NextBelow(1 << 22)));
        trace.slice_times.push_back(engine.Now());
      }
      engine.Run();
      break;
  }

  trace.executed = engine.executed_events();
  trace.final_time = engine.Now();
  return trace;
}

TEST(SchedulerEquivalenceTest, RandomWorkloadsMatchOver120Seeds) {
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    const Trace wheel = RunRandomWorkload(SchedulerKind::kTimerWheel, seed);
    const Trace heap = RunRandomWorkload(SchedulerKind::kReference, seed);
    ASSERT_EQ(wheel, heap) << "schedulers diverged at seed " << seed;
    ASSERT_GT(wheel.executed, 0u) << "degenerate workload at seed " << seed;
  }
}

// Equal-time mega-burst: hundreds of events at one instant, scheduled both
// before the run and from inside running events, must fire in insertion order.
Trace EqualTimeBurst(SchedulerKind kind) {
  Engine engine(kind);
  Trace trace;
  for (int i = 0; i < 300; ++i) {
    engine.Schedule(1000, [&trace, &engine, i]() {
      trace.firings.emplace_back(i, engine.Now());
      if (i < 50) {
        // Re-burst at the same instant from inside a running event.
        const int child = 1000 + i;
        engine.Post([&trace, &engine, child]() {
          trace.firings.emplace_back(child, engine.Now());
        });
      }
    });
  }
  engine.Run();
  trace.executed = engine.executed_events();
  trace.final_time = engine.Now();
  return trace;
}

TEST(SchedulerEquivalenceTest, EqualTimeBurstsFireInSchedulingOrder) {
  const Trace wheel = EqualTimeBurst(SchedulerKind::kTimerWheel);
  const Trace heap = EqualTimeBurst(SchedulerKind::kReference);
  EXPECT_EQ(wheel, heap);
  ASSERT_EQ(wheel.firings.size(), 350u);
  // The original 300 precede their Posted children only where ordering says
  // so: all fire at t=1000, strictly in sequence order.
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(wheel.firings[i].first, i);
    EXPECT_EQ(wheel.firings[i].second, 1000);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(wheel.firings[300 + i].first, 1000 + i);
  }
}

// Zero-delay Post chains interleaved with same-time Schedules: the ring fast
// lane must merge with the wheel by sequence number, not run ahead of it.
Trace PostChain(SchedulerKind kind) {
  Engine engine(kind);
  Trace trace;
  int remaining = 200;
  struct Chain {
    Engine& engine;
    Trace& trace;
    int& remaining;
    void Step(int id) {
      trace.firings.emplace_back(id, engine.Now());
      if (--remaining > 0) {
        Chain* self = this;
        const int next = id + 1;
        if (id % 3 == 0) {
          // Interleave a Schedule(0) with the Posts: both are "now".
          engine.Schedule(0, [self, next]() { self->Step(next); });
        } else {
          engine.Post([self, next]() { self->Step(next); });
        }
      }
    }
  };
  Chain chain{engine, trace, remaining};
  engine.Schedule(5, [&chain]() { chain.Step(0); });
  engine.Schedule(5, [&trace, &engine]() { trace.firings.emplace_back(-1, engine.Now()); });
  engine.Run();
  trace.executed = engine.executed_events();
  trace.final_time = engine.Now();
  return trace;
}

TEST(SchedulerEquivalenceTest, ZeroDelayPostChainsStayOrdered) {
  const Trace wheel = PostChain(SchedulerKind::kTimerWheel);
  const Trace heap = PostChain(SchedulerKind::kReference);
  EXPECT_EQ(wheel, heap);
  ASSERT_EQ(wheel.firings.size(), 201u);
  // The sibling scheduled after Step(0) fires before the chain's children:
  // chain posts happen later in sequence than the sibling's insertion.
  EXPECT_EQ(wheel.firings[0].first, 0);
  EXPECT_EQ(wheel.firings[1].first, -1);
  EXPECT_EQ(wheel.firings[2].first, 1);
  // All 201 events fire at t=5: the chain never advances time.
  for (const auto& [id, time] : wheel.firings) {
    EXPECT_EQ(time, 5) << "event " << id;
  }
}

// Beyond-horizon timers (> 2^48 ns) exercise the overflow heap and its refill
// path, including interleaving with near-term wheel timers.
Trace OverflowHorizon(SchedulerKind kind) {
  Engine engine(kind);
  Trace trace;
  const SimDuration horizon = static_cast<SimDuration>(1) << 48;
  engine.Schedule(horizon + 7, [&]() { trace.firings.emplace_back(3, engine.Now()); });
  engine.Schedule(10, [&]() {
    trace.firings.emplace_back(0, engine.Now());
    engine.Schedule(horizon + 7 - engine.Now(), [&]() {
      // Same absolute time as id 3 but a later sequence number.
      trace.firings.emplace_back(4, engine.Now());
    });
  });
  engine.Schedule(2 * horizon, [&]() { trace.firings.emplace_back(5, engine.Now()); });
  engine.Schedule(20, [&]() { trace.firings.emplace_back(1, engine.Now()); });
  engine.Schedule(horizon - 1, [&]() { trace.firings.emplace_back(2, engine.Now()); });
  engine.Run();
  trace.executed = engine.executed_events();
  trace.final_time = engine.Now();
  return trace;
}

TEST(SchedulerEquivalenceTest, OverflowHeapTimersFireInOrder) {
  const Trace wheel = OverflowHorizon(SchedulerKind::kTimerWheel);
  const Trace heap = OverflowHorizon(SchedulerKind::kReference);
  EXPECT_EQ(wheel, heap);
  ASSERT_EQ(wheel.firings.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(wheel.firings[i].first, i);
  }
  EXPECT_EQ(wheel.final_time, 2 * (static_cast<SimDuration>(1) << 48));
}

// --- Adversarial 2^48-horizon shapes (PR6 satellite) -------------------------
// Three shapes the random sweep reaches only with vanishing probability, each
// pinning a distinct overflow-heap / ring / wheel interaction.

// Shape 1: overflow-heap refills that force large pos_ jumps. Timers live far
// beyond the horizon in several clusters; draining one cluster makes the
// wheel cascade across nearly its whole range before the next refill, and
// events scheduled during a cluster land back in the refilled wheel.
Trace OverflowRefillJumps(SchedulerKind kind) {
  Engine engine(kind);
  Trace trace;
  int next_id = 0;
  const SimDuration horizon = static_cast<SimDuration>(1) << 48;
  for (int cluster = 1; cluster <= 4; ++cluster) {
    for (int j = 0; j < 8; ++j) {
      const int id = next_id++;
      engine.Schedule(cluster * horizon + j * 3, [&trace, &engine, id]() {
        trace.firings.emplace_back(id, engine.Now());
        // Near-term children: must land in the freshly-refilled wheel, not
        // the overflow heap, and fire before the next cluster.
        const int child = 100000 + id;
        engine.Schedule(17, [&trace, &engine, child]() {
          trace.firings.emplace_back(child, engine.Now());
        });
      });
    }
  }
  engine.Run();
  trace.executed = engine.executed_events();
  trace.final_time = engine.Now();
  return trace;
}

TEST(SchedulerEquivalenceTest, OverflowRefillPosJumpsMatch) {
  const Trace wheel = OverflowRefillJumps(SchedulerKind::kTimerWheel);
  const Trace heap = OverflowRefillJumps(SchedulerKind::kReference);
  ASSERT_EQ(wheel, heap);
  ASSERT_EQ(wheel.firings.size(), 64u);
}

// Shape 2: a cascade arriving at a tick where zero-delay ring entries are
// being produced. An event fires at a high-level wheel boundary (forcing a
// cascade to reach it), then spins a Post chain at that instant while a
// same-time Schedule(0) and a pre-planted same-tick timer race it: the merge
// must stay in global sequence order.
Trace CascadeVsRing(SchedulerKind kind) {
  Engine engine(kind);
  Trace trace;
  const SimDuration tick = (static_cast<SimDuration>(1) << 30) + 5;  // deep cascade
  engine.Schedule(tick, [&trace, &engine]() {
    trace.firings.emplace_back(0, engine.Now());
    engine.Post([&trace, &engine]() {
      trace.firings.emplace_back(2, engine.Now());
      engine.Schedule(0, [&trace, &engine]() { trace.firings.emplace_back(4, engine.Now()); });
    });
    engine.Schedule(0, [&trace, &engine]() { trace.firings.emplace_back(3, engine.Now()); });
  });
  // Planted long before: same tick, later time is impossible, so it fires
  // between the cascade's own events purely by sequence.
  engine.Schedule(tick, [&trace, &engine]() { trace.firings.emplace_back(1, engine.Now()); });
  engine.Run();
  trace.executed = engine.executed_events();
  trace.final_time = engine.Now();
  return trace;
}

TEST(SchedulerEquivalenceTest, CascadesMergeWithZeroDelayRingBySequence) {
  const Trace wheel = CascadeVsRing(SchedulerKind::kTimerWheel);
  const Trace heap = CascadeVsRing(SchedulerKind::kReference);
  ASSERT_EQ(wheel, heap);
  ASSERT_EQ(wheel.firings.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(wheel.firings[i].first, i);
    EXPECT_EQ(wheel.firings[i].second, (static_cast<SimDuration>(1) << 30) + 5);
  }
}

// Shape 3: one tick fed from all three sources at once — pre-planted wheel
// timers, an overflow-heap timer at the same absolute time, and ring entries
// posted once the tick starts. Everything at t = 2^48 + 31 must fire in
// insertion-sequence order regardless of which structure held it.
Trace ThreeWayMergeTick(SchedulerKind kind) {
  Engine engine(kind);
  Trace trace;
  const SimTime t = (static_cast<SimTime>(1) << 48) + 31;
  engine.Schedule(t, [&trace, &engine]() {  // beyond horizon at schedule time
    trace.firings.emplace_back(0, engine.Now());
    engine.Post([&trace, &engine]() { trace.firings.emplace_back(3, engine.Now()); });
  });
  engine.Schedule(40, [&trace, &engine, t]() {
    // Rescheduled mid-run: by now t is within the wheel horizon. Its sequence
    // number postdates the pre-planted id-1 timer below, so it fires third.
    engine.Schedule(t - engine.Now(), [&trace, &engine]() {
      trace.firings.emplace_back(2, engine.Now());
      engine.Schedule(0, [&trace, &engine]() { trace.firings.emplace_back(4, engine.Now()); });
    });
  });
  engine.Schedule(t, [&trace, &engine]() { trace.firings.emplace_back(1, engine.Now()); });
  engine.Run();
  trace.executed = engine.executed_events();
  trace.final_time = engine.Now();
  return trace;
}

TEST(SchedulerEquivalenceTest, SameTickRingWheelOverflowThreeWayMerge) {
  const Trace wheel = ThreeWayMergeTick(SchedulerKind::kTimerWheel);
  const Trace heap = ThreeWayMergeTick(SchedulerKind::kReference);
  ASSERT_EQ(wheel, heap);
  ASSERT_EQ(wheel.firings.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(wheel.firings[i].first, i);
    EXPECT_EQ(wheel.firings[i].second, (static_cast<SimTime>(1) << 48) + 31);
  }
}

// RunUntil contract: events at exactly the deadline run, Now() lands on the
// deadline when the queue is non-empty, and the return value reports drain.
TEST(SchedulerEquivalenceTest, RunUntilDeadlineSemanticsMatch) {
  for (SchedulerKind kind : {SchedulerKind::kTimerWheel, SchedulerKind::kReference}) {
    Engine engine(kind);
    std::vector<int> fired;
    engine.Schedule(10, [&]() { fired.push_back(0); });
    engine.Schedule(20, [&]() { fired.push_back(1); });
    engine.Schedule(30, [&]() { fired.push_back(2); });
    EXPECT_FALSE(engine.RunUntil(20)) << ToString(kind);
    EXPECT_EQ(engine.Now(), 20) << ToString(kind);
    EXPECT_EQ(fired, (std::vector<int>{0, 1})) << ToString(kind);
    EXPECT_TRUE(engine.RunUntil(100)) << ToString(kind);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2})) << ToString(kind);
    EXPECT_EQ(engine.Now(), 30) << ToString(kind);
    EXPECT_EQ(engine.executed_events(), 3u) << ToString(kind);
  }
}

TEST(SchedulerEquivalenceDeathTest, EventLimitAbortsBothSchedulers) {
  for (SchedulerKind kind : {SchedulerKind::kTimerWheel, SchedulerKind::kReference}) {
    Engine engine(kind);
    engine.set_event_limit(50);
    // Self-sustaining chain: never drains on its own.
    struct Loop {
      Engine& engine;
      void Go() {
        Loop* self = this;
        engine.Schedule(1, [self]() { self->Go(); });
      }
    };
    Loop loop{engine};
    loop.Go();
    EXPECT_DEATH(engine.Run(), "event limit") << ToString(kind);
  }
}

// Direct Scheduler-interface differential: random Push/PopNext interleavings
// (all pushes at times >= the last popped time, as the Engine guarantees).
TEST(SchedulerEquivalenceTest, RawSchedulerInterleavingsMatch) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    auto wheel = MakeScheduler(SchedulerKind::kTimerWheel);
    auto heap = MakeScheduler(SchedulerKind::kReference);
    Rng rng(seed * 7919);
    SimTime now = 0;
    std::vector<SimTime> wheel_pops;
    std::vector<SimTime> heap_pops;
    for (int step = 0; step < 500; ++step) {
      if (rng.NextBool(0.6) || wheel->Empty()) {
        const SimTime at = now + DrawDelay(rng);
        wheel->Push(at, []() {});
        heap->Push(at, []() {});
      } else {
        ASSERT_EQ(wheel->Empty(), heap->Empty());
        ASSERT_EQ(wheel->NextTime(), heap->NextTime());
        SimTime tw = 0;
        SimTime th = 0;
        wheel->PopNext(&tw);
        heap->PopNext(&th);
        ASSERT_EQ(tw, th) << "seed " << seed << " step " << step;
        now = tw;
        wheel_pops.push_back(tw);
        heap_pops.push_back(th);
      }
      ASSERT_EQ(wheel->pending(), heap->pending());
    }
    while (!wheel->Empty()) {
      ASSERT_FALSE(heap->Empty());
      SimTime tw = 0;
      SimTime th = 0;
      wheel->PopNext(&tw);
      heap->PopNext(&th);
      ASSERT_EQ(tw, th) << "drain, seed " << seed;
    }
    ASSERT_TRUE(heap->Empty());
  }
}

// The end-to-end pin: the golden timeline digests from determinism_test.cc
// must come out bit-identical when the whole Machine runs on the reference
// heap scheduler. This is the strongest statement that the wheel changed
// nothing observable — same constants, different event core.
uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t DigestWorkload(DsmKind kind, SchedulerKind scheduler) {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = kind;
  config.scheduler = scheduler;
  Machine machine(config);
  MemObjectId region = machine.CreateSharedRegion(0, 32);
  std::vector<TaskMemory*> mems;
  for (NodeId n = 0; n < 6; ++n) {
    mems.push_back(&machine.MapRegion(n, region));
  }
  Rng rng(1234);
  uint64_t digest = 14695981039346656037ULL;
  for (int i = 0; i < 200; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(6));
    const VmOffset addr = rng.NextBelow(32) * 8192;
    if (rng.NextBool(0.5)) {
      auto w = mems[node]->WriteU64(addr, static_cast<uint64_t>(i));
      machine.Run();
    } else {
      auto r = mems[node]->ReadU64(addr);
      machine.Run();
      digest = Fnv1a(digest, r.ready() ? r.value() : ~0ULL);
    }
    digest = Fnv1a(digest, static_cast<uint64_t>(machine.Now()));
  }
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.messages")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("mesh.bytes")));
  digest = Fnv1a(digest, static_cast<uint64_t>(machine.stats().Get("vm.faults")));
  return digest;
}

TEST(SchedulerEquivalenceTest, GoldenDigestsIdenticalAcrossSchedulers) {
  // Constants from tests/determinism_test.cc — recorded before the timer
  // wheel existed, so both schedulers must reproduce the pre-wheel timeline.
  EXPECT_EQ(DigestWorkload(DsmKind::kAsvm, SchedulerKind::kReference),
            16791609795929360054ULL);
  EXPECT_EQ(DigestWorkload(DsmKind::kAsvm, SchedulerKind::kTimerWheel),
            16791609795929360054ULL);
  EXPECT_EQ(DigestWorkload(DsmKind::kXmm, SchedulerKind::kReference),
            9185313916855082992ULL);
  EXPECT_EQ(DigestWorkload(DsmKind::kXmm, SchedulerKind::kTimerWheel),
            9185313916855082992ULL);
}

}  // namespace
}  // namespace asvm
