// Sectioned (PFS-pattern) file reads, content verification helpers, and the
// interplay of striped regions with the workload drivers.
#include <gtest/gtest.h>

#include "src/mappedfs/file_bench.h"

namespace asvm {
namespace {

MachineConfig Config(DsmKind kind, int nodes, int pagers = 1) {
  MachineConfig config;
  config.nodes = nodes;
  config.dsm = kind;
  config.file_pager_count = pagers;
  return config;
}

class SectionsBothSystems : public ::testing::TestWithParam<DsmKind> {};

TEST_P(SectionsBothSystems, DisjointSectionsCoverTheFile) {
  Machine machine(Config(GetParam(), 5));
  int32_t file_id = machine.cluster().file_pager().CreateFile("s", 17, /*prefilled=*/true);
  MemObjectId region = machine.dsm().CreateFileRegion(file_id, 17);
  // 17 pages over 4 nodes: the last node takes the remainder.
  FileBenchResult r = RunParallelFileReadSections(machine, region, 17, 4, /*first_node=*/1);
  EXPECT_EQ(r.node_seconds.size(), 4u);
  EXPECT_GT(r.per_node_mb_s, 0);
  // All 17 pages must now be verifiable through the DSM.
  TaskMemory& checker = machine.MapRegion(2, region);
  EXPECT_EQ(VerifyFileContents(machine, checker, file_id, 17), 0);
}

TEST_P(SectionsBothSystems, WriteThenVerifyDetectsNoCorruption) {
  Machine machine(Config(GetParam(), 4));
  MemObjectId region = machine.CreateMappedFile("w", 12, /*prefilled=*/false);
  FileBenchResult w = RunParallelFileWrite(machine, region, 12, 3, /*first_node=*/1);
  EXPECT_GT(w.per_node_mb_s, 0);
  // Fresh file written with zero-extended touches: every page readable.
  TaskMemory& reader = machine.MapRegion(1, region);
  for (VmOffset p = 0; p < 12; ++p) {
    auto f = reader.ReadU64(p * 8192);
    machine.Run();
    ASSERT_TRUE(f.ready());
  }
}

INSTANTIATE_TEST_SUITE_P(BothSystems, SectionsBothSystems,
                         ::testing::Values(DsmKind::kAsvm, DsmKind::kXmm),
                         [](const ::testing::TestParamInfo<DsmKind>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(VerifyFileContentsTest, DetectsCorruption) {
  Machine machine(Config(DsmKind::kAsvm, 3));
  int32_t file_id = machine.cluster().file_pager().CreateFile("c", 4, /*prefilled=*/true);
  MemObjectId region = machine.dsm().CreateFileRegion(file_id, 4);
  TaskMemory& writer = machine.MapRegion(1, region);
  // Clobber one page through the DSM: the checker must flag exactly it.
  auto w = writer.WriteU64(2 * 8192 + 64, 0xDEAD);
  machine.Run();
  ASSERT_TRUE(w.ready());
  TaskMemory& checker = machine.MapRegion(2, region);
  EXPECT_EQ(VerifyFileContents(machine, checker, file_id, 4), 1);
}

TEST(StripedSectionsTest, StripedRegionWorksWithSectionedReads) {
  Machine machine(Config(DsmKind::kAsvm, 8, /*pagers=*/4));
  MemObjectId region = machine.CreateStripedFile("sr", 32, 4, /*prefilled=*/true);
  FileBenchResult r = RunParallelFileReadSections(machine, region, 32, 4, /*first_node=*/4);
  EXPECT_GT(r.per_node_mb_s, 0);
  // Reading again from another node serves from caches, not disk.
  const int64_t disk_reads = machine.stats().Get("disk.reads");
  FileBenchResult warm = RunParallelFileRead(machine, region, 32, 4, /*first_node=*/4);
  EXPECT_GT(warm.per_node_mb_s, r.per_node_mb_s);
  EXPECT_EQ(machine.stats().Get("disk.reads"), disk_reads);
}

}  // namespace
}  // namespace asvm
