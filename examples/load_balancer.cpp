// Dynamic load balancing by task migration — the use case §4.1.2 calls out:
// "each migration of a task adds another stage to the copy chain from the
// node where the task was originally started to the node where it is
// running." A task's working set follows it lazily; only the pages it
// actually touches move.
//
//   $ ./load_balancer
#include <cstdio>
#include <vector>

#include "src/core/machine.h"
#include "src/core/measure.h"

using namespace asvm;

namespace {

// One "migratable task": private memory + the node it currently runs on.
struct MigratableTask {
  TaskMemory* memory = nullptr;
  NodeId node = 0;
  int migrations = 0;
};

void RunSystem(DsmKind kind) {
  std::printf("\n-- %s --\n", ToString(kind));
  MachineConfig config;
  config.nodes = 8;
  config.dsm = kind;
  Machine machine(config);

  // The task starts on node 0 with a 256 KB working set it initializes.
  const VmSize pages = 32;
  MigratableTask task;
  task.memory = &machine.CreatePrivateTask(0, pages);
  task.node = 0;
  for (VmOffset p = 0; p < pages; ++p) {
    auto w = task.memory->WriteU64(p * 8192, 1000 + p);
    machine.Run();
  }

  // A simple balancer migrates the task to the least-loaded node each epoch;
  // each migration is a remote fork (delayed copy) + switch-over.
  const NodeId schedule[] = {3, 5, 1, 6};
  for (NodeId target : schedule) {
    const SimTime migrate_start = machine.Now();
    auto fork = machine.RemoteFork(task.node, *task.memory, target);
    machine.Run();
    if (!fork.ready()) {
      std::printf("migration failed\n");
      return;
    }
    task.memory = &machine.WrapMap(target, fork.value());
    task.node = target;
    ++task.migrations;
    const double migrate_ms = ToMilliseconds(machine.Now() - migrate_start);

    // The task resumes and moves on to a fresh quarter of its working set —
    // pages nothing has cached since the original initialization, so each
    // pull walks the whole chain back to the origin node.
    const SimTime work_start = machine.Now();
    const VmOffset base = static_cast<VmOffset>(task.migrations - 1) * (pages / 4);
    for (VmOffset p = base; p < base + pages / 4; ++p) {
      uint64_t v = 0;
      MeasureReadMs(machine, *task.memory, p * 8192, &v);
      if (v < 1000) {
        std::printf("  !! lost data after migration\n");
        return;
      }
    }
    for (VmOffset p = base; p < base + 4; ++p) {
      MeasureWriteMs(machine, *task.memory, p * 8192, 2000 + task.migrations);
    }
    const double work_ms = ToMilliseconds(machine.Now() - work_start);
    std::printf("migration %d -> node %d: handoff %.2f ms, first epoch %.1f ms "
                "(chain depth %d)\n",
                task.migrations, target, migrate_ms, work_ms, task.migrations);
  }
  std::printf("total simulated time: %.1f ms, wire traffic %.2f MB\n",
              ToMilliseconds(machine.Now()),
              static_cast<double>(machine.stats().Get("mesh.bytes")) / (1024 * 1024));
}

}  // namespace

int main() {
  std::printf("== Task migration: copy chains grow with every move (paper §4.1.2) ==\n");
  RunSystem(DsmKind::kAsvm);
  RunSystem(DsmKind::kXmm);
  std::printf(
      "\nASVM's cheap chain traversal (~0.5 ms/stage) keeps migrated tasks\n"
      "responsive; XMM pays a blocking NORMA round trip per stage, so each\n"
      "migration makes every cold page dearer (Figure 11).\n");
  return 0;
}
