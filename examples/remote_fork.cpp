// Remote task creation with delayed copies: the Figure 9 scenario. A task's
// memory is forked across a chain of nodes; faults on the last node pull
// pages through the copy chain back to the original data, and writes push
// pre-write snapshots forward. Run under both ASVM and XMM to compare.
//
//   $ ./remote_fork
#include <cstdio>
#include <vector>

#include "src/core/machine.h"
#include "src/core/measure.h"

using namespace asvm;

namespace {

void RunChain(DsmKind kind) {
  std::printf("\n-- %s --\n", ToString(kind));
  MachineConfig config;
  config.nodes = 4;
  config.dsm = kind;
  Machine machine(config);

  // The original task on node 0 initializes a 64 KB region.
  TaskMemory& origin = machine.CreatePrivateTask(0, 8);
  for (VmOffset p = 0; p < 8; ++p) {
    auto w = origin.WriteU64(p * 8192, 100 + p);
    machine.Run();
  }
  std::printf("node 0: initialized 8 pages (values 100..107)\n");

  // Fork 0 -> 1 -> 2 (each fork is a lazily-evaluated copy).
  auto f1 = machine.RemoteFork(0, origin, 1);
  machine.Run();
  TaskMemory& child = machine.WrapMap(1, f1.value());
  auto f2 = machine.RemoteFork(1, child, 2);
  machine.Run();
  TaskMemory& grandchild = machine.WrapMap(2, f2.value());
  std::printf("forked 0 -> 1 -> 2 (no pages copied yet: delayed copy)\n");

  // The grandchild faults: the pull walks the copy chain back to node 0.
  uint64_t value = 0;
  double ms = MeasureReadMs(machine, grandchild, 0, &value);
  std::printf("node 2 reads page 0 -> %llu (%.2f ms: pulled through the chain)\n",
              static_cast<unsigned long long>(value), ms);

  // The original writes: the pre-write value must be pushed to the copies
  // first (version counters decide).
  MeasureWriteMs(machine, origin, 8192, 999);
  uint64_t child_view = 0;
  MeasureReadMs(machine, child, 8192, &child_view);
  uint64_t origin_view = 0;
  MeasureReadMs(machine, origin, 8192, &origin_view);
  std::printf("node 0 writes 999 to page 1; child still sees %llu, origin sees %llu\n",
              static_cast<unsigned long long>(child_view),
              static_cast<unsigned long long>(origin_view));

  // Each generation's writes stay private.
  MeasureWriteMs(machine, grandchild, 2 * 8192, 7);
  uint64_t gv = 0;
  uint64_t ov = 0;
  MeasureReadMs(machine, grandchild, 2 * 8192, &gv);
  MeasureReadMs(machine, origin, 2 * 8192, &ov);
  std::printf("node 2 writes 7 to page 2; node 2 sees %llu, node 0 still sees %llu\n",
              static_cast<unsigned long long>(gv), static_cast<unsigned long long>(ov));

  std::printf("simulated time: %.1f ms, wire bytes: %lld\n", ToMilliseconds(machine.Now()),
              static_cast<long long>(machine.stats().Get("mesh.bytes")));
}

}  // namespace

int main() {
  std::printf("== Remote forks with delayed copies (Figure 9 walk) ==\n");
  RunChain(DsmKind::kAsvm);
  RunChain(DsmKind::kXmm);
  std::printf(
      "\nBoth systems preserve copy semantics; compare the simulated times —\n"
      "XMM pays a blocking NORMA round trip per chain stage (Figure 11).\n");
  return 0;
}
