// EM3D on shared virtual memory: runs the paper's §4.3 application at a
// medium size under both memory managers, verifying results against a
// sequential reference and reporting the scaling behaviour of Table 3.
//
//   $ ./em3d_demo
#include <cstdio>

#include "src/em3d/em3d.h"

using namespace asvm;

int main() {
  std::printf("== EM3D on SVM: ASVM speedup vs XMM slowdown ==\n\n");

  // Correctness first: a small graph computed through the DSM must match the
  // sequential reference bit for bit.
  {
    Em3dParams small;
    small.cells = 240;
    small.iterations = 4;
    MachineConfig config;
    config.nodes = 3;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    const uint64_t parallel = RunEm3dVerified(machine, small, 3);
    const uint64_t reference = Em3dSequentialChecksum(small, 3);
    std::printf("verification (240 cells, 3 nodes): parallel checksum %016llx, "
                "sequential %016llx -> %s\n\n",
                static_cast<unsigned long long>(parallel),
                static_cast<unsigned long long>(reference),
                parallel == reference ? "MATCH" : "MISMATCH");
  }

  // Scaling: 64000 cells (14 MB of cells), 100 iterations, like Table 3.
  Em3dParams params;
  params.cells = 64000;
  params.iterations = 100;
  const double sequential = Em3dSequentialSeconds(params);
  std::printf("%7s %12s %12s %14s\n", "nodes", "ASVM (s)", "XMM (s)", "ASVM speedup");
  std::printf("%7d %12.1f %12s %13.2fx\n", 1, sequential, "-", 1.0);
  for (int nodes : {2, 4, 8, 16}) {
    double results[2];
    int i = 0;
    for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
      MachineConfig config;
      config.nodes = nodes;
      config.dsm = kind;
      Machine machine(config);
      results[i++] = RunEm3dTimed(machine, params, nodes, /*measure_iters=*/5).seconds;
    }
    std::printf("%7d %12.1f %12.1f %13.2fx\n", nodes, results[0], results[1],
                sequential / results[0]);
  }
  std::printf(
      "\nASVM distributes each page's management across the nodes using it;\n"
      "XMM funnels every fault through one manager node and slows DOWN as\n"
      "nodes are added (paper Table 3).\n");
  return 0;
}
