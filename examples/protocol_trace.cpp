// Protocol tracing: attach a monitor to an ASVM machine and watch a page's
// full life — first touch at the pager, read sharing, invalidation, ownership
// migration — as a timeline of protocol events (the "system and application
// level monitoring" interfaces of the original project).
//
//   $ ./protocol_trace
#include <cstdio>

#include "src/asvm/agent.h"
#include "src/asvm/asvm_system.h"
#include "src/common/trace.h"
#include "src/core/machine.h"
#include "src/core/measure.h"

using namespace asvm;

int main() {
  MachineConfig config;
  config.nodes = 6;
  config.dsm = DsmKind::kAsvm;
  Machine machine(config);
  auto& system = static_cast<AsvmSystem&>(machine.dsm());

  TraceBuffer trace;
  system.AttachMonitor(&trace);

  MemObjectId region = machine.CreateSharedRegion(/*home=*/0, /*pages=*/8);
  TaskMemory& writer = machine.MapRegion(1, region);
  TaskMemory& reader_a = machine.MapRegion(2, region);
  TaskMemory& reader_b = machine.MapRegion(3, region);
  TaskMemory& thief = machine.MapRegion(4, region);

  std::printf("== Life of a page, traced ==\n\n");
  MeasureWriteMs(machine, writer, 0, 42);    // first touch: pager grant
  MeasureReadMs(machine, reader_a, 0);       // owner serves a reader
  MeasureReadMs(machine, reader_b, 0);       // ... and another
  MeasureWriteMs(machine, thief, 0, 43);     // invalidations + ownership move
  MeasureReadMs(machine, writer, 0);         // stale node re-fetches

  std::printf("%s\n", trace.Render(/*page=*/0).c_str());

  std::printf("event totals: %lld (%lld invalidations, %lld ownership moves)\n",
              static_cast<long long>(trace.total()),
              static_cast<long long>(trace.count(TraceKind::kInvalidate)),
              static_cast<long long>(trace.count(TraceKind::kOwnershipMoved)));

  std::printf("\n== Per-node state dumps (application-level monitoring) ==\n\n");
  for (NodeId n = 1; n <= 4; ++n) {
    std::printf("%s", system.agent(n).DumpObjectState(region).c_str());
  }
  return 0;
}
