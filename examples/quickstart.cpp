// Quickstart: build a simulated multicomputer, create a distributed shared
// memory region, and watch coherent pages move between nodes under ASVM.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/machine.h"
#include "src/core/measure.h"

using namespace asvm;

int main() {
  // A 16-node Paragon-like machine running the ASVM memory manager.
  MachineConfig config;
  config.nodes = 16;
  config.dsm = DsmKind::kAsvm;
  Machine machine(config);

  // A 1 MB shared virtual memory segment homed on node 0.
  MemObjectId region = machine.CreateSharedRegion(/*home=*/0, /*pages=*/128);

  // Tasks on three nodes map it.
  TaskMemory& alice = machine.MapRegion(1, region);
  TaskMemory& bob = machine.MapRegion(5, region);
  TaskMemory& carol = machine.MapRegion(9, region);

  std::printf("== ASVM quickstart: one page, three nodes ==\n\n");

  // Node 1 writes: a fresh page is granted by the pager; node 1 becomes its
  // owner.
  double ms = MeasureWriteMs(machine, alice, 0, 42);
  std::printf("node 1 writes 42        : %5.2f ms (zero-fill grant, node 1 owns page)\n", ms);

  // Node 5 reads: the request is forwarded to the owner, which answers with
  // the page and records node 5 in its reader list.
  uint64_t value = 0;
  ms = MeasureReadMs(machine, bob, 0, &value);
  std::printf("node 5 reads -> %llu      : %5.2f ms (served by owner node 1)\n",
              static_cast<unsigned long long>(value), ms);

  // Node 9 writes: the owner invalidates node 5's copy, hands page +
  // ownership to node 9.
  ms = MeasureWriteMs(machine, carol, 0, 1000);
  std::printf("node 9 writes 1000      : %5.2f ms (invalidate reader, move ownership)\n", ms);

  // Node 1 re-reads: its stale copy is long gone; forwarding finds node 9.
  ms = MeasureReadMs(machine, alice, 0, &value);
  std::printf("node 1 reads -> %llu    : %5.2f ms (hint chain finds new owner)\n",
              static_cast<unsigned long long>(value), ms);

  // Re-access is a memory-speed hit: no protocol at all.
  ms = MeasureReadMs(machine, alice, 0, &value);
  std::printf("node 1 reads again      : %5.2f ms (local cache hit)\n", ms);

  std::printf("\nSimulated time elapsed: %.2f ms\n", ToMilliseconds(machine.Now()));
  std::printf("STS messages on the wire: %lld (+%lld invalidation control msgs)\n",
              static_cast<long long>(machine.stats().Get("transport.sts.messages")),
              static_cast<long long>(machine.stats().Get("transport.sts_ctl.messages")));
  std::printf("ASVM metadata on node 1: %zu bytes (state only for cached pages)\n",
              machine.DsmMetadataBytes(1));
  return 0;
}
