// Memory-mapped file shared by many nodes (the paper's §4.2 workload): nodes
// mmap the same file, read it in parallel, write disjoint sections, and the
// contents stay intact — while the two memory managers deliver very
// different transfer rates.
//
//   $ ./shared_file
#include <cstdio>

#include "src/core/machine.h"
#include "src/mappedfs/file_bench.h"

using namespace asvm;

int main() {
  std::printf("== Shared memory-mapped file (UFS over DSM) ==\n\n");
  const VmSize pages = 128;  // 1 MB file

  for (DsmKind kind : {DsmKind::kAsvm, DsmKind::kXmm}) {
    MachineConfig config;
    config.nodes = 9;  // node 0 is the I/O node, 8 compute nodes
    config.dsm = kind;
    Machine machine(config);

    int32_t file_id =
        machine.cluster().file_pager().CreateFile("dataset.bin", pages, /*prefilled=*/true);
    MemObjectId region = machine.dsm().CreateFileRegion(file_id, pages);

    FileBenchResult read = RunParallelFileRead(machine, region, pages, 8, /*first_node=*/1);

    // Verify the data that arrived through the DSM against the on-disk
    // pattern.
    TaskMemory& checker = machine.MapRegion(4, region);
    const int bad = VerifyFileContents(machine, checker, file_id, pages);

    std::printf("%s: 8 nodes read a 1 MB file in parallel\n", ToString(kind));
    std::printf("   per-node rate : %.2f MB/s\n", read.per_node_mb_s);
    std::printf("   makespan      : %.3f s\n", read.makespan_seconds);
    std::printf("   data integrity: %s\n\n", bad == 0 ? "all pages intact" : "CORRUPTED");
  }

  // Parallel writes of disjoint sections (fresh file, async write-behind).
  {
    MachineConfig config;
    config.nodes = 9;
    config.dsm = DsmKind::kAsvm;
    Machine machine(config);
    MemObjectId region = machine.CreateMappedFile("out.bin", pages, /*prefilled=*/false);
    FileBenchResult write = RunParallelFileWrite(machine, region, pages, 8, /*first_node=*/1);
    std::printf("ASVM: 8 nodes write disjoint sections: %.2f MB/s per node "
                "(pager-limited, async write-behind)\n",
                write.per_node_mb_s);
  }
  return 0;
}
